"""Per-module AST fact extraction for the flow analyzer.

One parse per file, producing a :class:`ModuleFacts` that records — in
*descriptor* form, unresolved — everything the graph builder
(:mod:`repro.checks.flow.graph`) needs: function/class definitions,
call and function-reference sites, local/attribute type hints,
determinism sources, environment reads, module-global writes, and
import-time calls.  Descriptors are plain tuples so the extraction has
no knowledge of other modules; all cross-module resolution happens in
the graph builder.

Descriptor grammar (``desc``)::

    ("name", n)            bare name:             f(...)     /  f
    ("self", m)            method on self:        self.m(...)/  self.m
    ("self_attr", a, m)    via an instance attr:  self.a.m
    ("var_attr", v, m)     via a local/param:     v.m
    ("name_attr", n, m)    via a module/class:    n.m
    ("unknown",)           anything deeper

Nested functions and lambdas are attributed to their enclosing
function: for whole-program reachability what matters is which *body*
executes, not Python's scoping.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..lint.engine import (_collect_suppressions, _CLOCK_FNS,
                           _DATETIME_NOW_FNS, _GLOBAL_RNG_FNS, _HOT_TAG_RE,
                           module_name_for)

Desc = Tuple[Any, ...]

#: container/str mutators that count as writing through a name
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "pop",
    "popitem", "popleft", "clear", "remove", "discard", "extend",
    "insert", "move_to_end", "sort", "reverse",
})


@dataclass
class CallSite:
    """One call expression inside a function body."""
    desc: Desc
    line: int
    scheduled: bool = False      # appears inside *.post/at/after args
    nested: bool = False         # inside a nested def/lambda (closure)


@dataclass
class RefSite:
    """One non-call function-reference candidate (callback escape)."""
    desc: Desc
    line: int
    scheduled: bool = False
    nested: bool = False


@dataclass
class Source:
    """One nondeterminism source expression."""
    kind: str      # clock | rng | urandom | env | id | set-iter
    detail: str
    line: int
    nested: bool = False


@dataclass
class GlobalWrite:
    """A write to a module-level name from inside a function."""
    name: str
    line: int
    how: str       # assign | augassign | mutate | setitem | setattr


@dataclass
class FunctionFacts:
    qualname: str
    name: str
    module: str
    path: str
    line: int
    class_name: Optional[str] = None
    hot_tagged: bool = False
    returns: Optional[str] = None      # return-annotation class name
    decorators: List[Desc] = field(default_factory=list)
    is_property: bool = False
    calls: List[CallSite] = field(default_factory=list)
    refs: List[RefSite] = field(default_factory=list)
    sources: List[Source] = field(default_factory=list)
    global_writes: List[GlobalWrite] = field(default_factory=list)
    names_loaded: Set[str] = field(default_factory=set)
    var_types: Dict[str, Desc] = field(default_factory=dict)
    var_funcs: Dict[str, Desc] = field(default_factory=dict)

    @property
    def is_dunder(self) -> bool:
        return self.name.startswith("__") and self.name.endswith("__")


@dataclass
class ClassFacts:
    qualname: str
    name: str
    module: str
    path: str
    line: int
    bases: List[Desc] = field(default_factory=list)
    decorators: List[Desc] = field(default_factory=list)
    decorator_args: List[Tuple[Desc, List[str]]] = field(default_factory=list)
    methods: Dict[str, FunctionFacts] = field(default_factory=dict)
    attr_types: Dict[str, List[Desc]] = field(default_factory=dict)
    stored_methods: Dict[str, List[str]] = field(default_factory=dict)


@dataclass
class ModuleFacts:
    module: str
    path: str
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    global_vars: Dict[str, int] = field(default_factory=dict)
    str_tables: Dict[str, List[str]] = field(default_factory=dict)
    module_level: Optional[FunctionFacts] = None   # import-time pseudo-fn
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    suppression_lines: Dict[int, Set[str]] = field(default_factory=dict)
    skip_file: bool = False

    def all_functions(self) -> List[FunctionFacts]:
        out = list(self.functions.values())
        for cls in self.classes.values():
            out.extend(cls.methods.values())
        return out


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _descriptor(node: ast.AST) -> Desc:
    """Classify a callee / reference expression into the desc grammar."""
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                return ("self", node.attr)
            return ("name_attr", base.id, node.attr)
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"):
            return ("self_attr", base.attr, node.attr)
    return ("unknown",)


def _var_descriptor(node: ast.AST) -> Desc:
    """Descriptor for a reference where the base may be a local var."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id != "self":
            return ("var_attr", node.value.id, node.attr)
    return _descriptor(node)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Class name from an annotation (handles strings and Optional[X])."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        for wrapper in ("Optional[", "Optional ["):
            if text.startswith(wrapper) and text.endswith("]"):
                text = text[len(wrapper):-1].strip()
        return text.split("[", 1)[0].strip() or None
    if isinstance(node, ast.Subscript):
        outer = node.value
        if isinstance(outer, ast.Name) and outer.id == "Optional":
            inner = node.slice
            if isinstance(inner, ast.Index):   # py38 compat shape
                inner = inner.value  # type: ignore[attr-defined]
            return _annotation_name(inner)
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _str_table_values(node: ast.AST) -> Optional[List[str]]:
    """Values of a dict literal mapping str -> dotted/colon qualname."""
    if not isinstance(node, ast.Dict) or not node.values:
        return None
    out: List[str] = []
    for value in node.values:
        if not (isinstance(value, ast.Constant)
                and isinstance(value.value, str)):
            return None
        text = value.value
        body = text.replace(":", ".", 1)
        if ":" in body or not body or not all(
                part.isidentifier() for part in body.split(".")):
            return None
        out.append(text)
    return out


class _ImportScan:
    """Module import aliases relevant to source detection."""

    __slots__ = ("random", "time", "os", "datetime_mod", "datetime_cls",
                 "environ_names", "getenv_names", "from_time",
                 "from_random")

    def __init__(self) -> None:
        self.random: Set[str] = set()
        self.time: Set[str] = set()
        self.os: Set[str] = set()
        self.datetime_mod: Set[str] = set()
        self.datetime_cls: Set[str] = set()
        self.environ_names: Set[str] = set()
        self.getenv_names: Set[str] = set()
        self.from_time: Set[str] = set()
        self.from_random: Set[str] = set()


# ----------------------------------------------------------------------
# The function-body walker
# ----------------------------------------------------------------------
class _BodyWalker:
    """Collect calls, refs, sources, and global writes for one body."""

    def __init__(self, facts: FunctionFacts, scan: _ImportScan,
                 module_funcs: Set[str], imported: Set[str]) -> None:
        self.facts = facts
        self.scan = scan
        self.module_funcs = module_funcs
        self.imported = imported
        self.locals: Set[str] = set()
        self.globals_decl: Set[str] = set()
        self.scheduled_depth = 0
        self.nested_depth = 0

    # -- pre-pass: locals, types, function-valued locals ---------------
    def prepass(self, node: ast.AST, args: Optional[ast.arguments]) -> None:
        if args is not None:
            for arg in (list(args.args) + list(args.kwonlyargs)
                        + list(getattr(args, "posonlyargs", []))):
                self.locals.add(arg.arg)
                ann = _annotation_name(arg.annotation)
                if ann:
                    self.facts.var_types[arg.arg] = ("name", ann)
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    self.locals.add(extra.arg)
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                self.globals_decl.update(child.names)
            elif isinstance(child, (ast.For, ast.comprehension)):
                target = child.target
                for t in ast.walk(target):
                    if isinstance(t, ast.Name):
                        self.locals.add(t.id)
            elif isinstance(child, ast.withitem):
                if child.optional_vars is not None:
                    for t in ast.walk(child.optional_vars):
                        if isinstance(t, ast.Name):
                            self.locals.add(t.id)
            elif isinstance(child, ast.ExceptHandler):
                if child.name:
                    self.locals.add(child.name)
            elif isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (child.targets if isinstance(child, ast.Assign)
                           else [child.target])
                for target in targets:
                    for t in ast.walk(target):
                        if isinstance(t, ast.Name):
                            if t.id not in self.globals_decl:
                                self.locals.add(t.id)
                value = getattr(child, "value", None)
                if (isinstance(child, (ast.Assign, ast.AnnAssign))
                        and value is not None and len(targets) == 1
                        and isinstance(targets[0], ast.Name)):
                    var = targets[0].id
                    if isinstance(value, ast.Call):
                        # v = Foo(...) / v = mod.Foo(...) / v = C.make(...)
                        desc = _descriptor(value.func)
                        if desc[0] in ("name", "name_attr"):
                            self.facts.var_types[var] = desc
                    else:
                        desc = _var_descriptor(value)
                        if desc[0] in ("self", "self_attr", "name",
                                       "name_attr"):
                            self.facts.var_funcs[var] = desc
                if (isinstance(child, ast.AnnAssign)
                        and isinstance(child.target, ast.Name)):
                    ann = _annotation_name(child.annotation)
                    if ann:
                        self.facts.var_types[child.target.id] = ("name", ann)

    # -- main recursive walk -------------------------------------------
    def walk(self, node: ast.AST) -> None:
        for stmt in ast.iter_child_nodes(node):
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # nested body attributed to the enclosing function, but
            # marked: it does NOT execute when the encloser is called
            body = node.body if isinstance(node.body, list) else [node.body]
            self.nested_depth += 1
            for stmt in body:
                self._visit(stmt)
            self.nested_depth -= 1
            return
        if isinstance(node, ast.Attribute):
            self._maybe_ref(node)
            return   # don't descend: desc covered the chain
        if isinstance(node, ast.Name):
            self._visit_name(node)
            return
        if isinstance(node, ast.For):
            self._check_set_iter(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                self._check_set_iter(gen.iter)
        elif isinstance(node, ast.Subscript):
            self._visit_subscript(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._visit_assign(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- pieces ---------------------------------------------------------
    def _visit_name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        self.facts.names_loaded.add(node.id)
        if (node.id in self.facts.var_funcs
                or ((node.id in self.module_funcs or node.id in self.imported)
                    and node.id not in self.locals)):
            self._add_ref(("name", node.id), node.lineno)

    def _maybe_ref(self, node: ast.Attribute) -> None:
        desc = self._site_desc(node)
        if desc[0] != "unknown":
            self._add_ref(desc, node.lineno)
        # still record bare-name loads beneath the chain (str tables)
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                self.facts.names_loaded.add(child.id)

    def _site_desc(self, node: ast.AST) -> Desc:
        desc = _var_descriptor(node)
        if desc[0] == "var_attr" and desc[1] not in self.locals:
            # not a local: treat the base as a module-level name
            desc = ("name_attr", desc[1], desc[2])
        return desc

    def _add_ref(self, desc: Desc, line: int) -> None:
        self.facts.refs.append(
            RefSite(desc, line, scheduled=self.scheduled_depth > 0,
                    nested=self.nested_depth > 0))

    def _add_source(self, kind: str, detail: str, line: int) -> None:
        self.facts.sources.append(
            Source(kind, detail, line, nested=self.nested_depth > 0))

    def _visit_call(self, node: ast.Call) -> None:
        desc = self._site_desc(node.func)
        self.facts.calls.append(
            CallSite(desc, node.lineno, scheduled=self.scheduled_depth > 0,
                     nested=self.nested_depth > 0))
        self._detect_call_source(node, desc)
        # record names under the callee chain (registry table detection)
        for child in ast.walk(node.func):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                self.facts.names_loaded.add(child.id)
        scheduler = (len(desc) >= 2 and desc[0] in
                     ("self", "self_attr", "var_attr", "name_attr")
                     and desc[-1] in _SCHEDULER_METHODS)
        if scheduler:
            self.scheduled_depth += 1
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._visit(arg)
        if scheduler:
            self.scheduled_depth -= 1

    def _detect_call_source(self, node: ast.Call, desc: Desc) -> None:
        scan = self.scan
        line = node.lineno
        add = self._add_source
        if desc[0] == "name_attr":
            base, attr = desc[1], desc[2]
            if base in scan.time and attr in _CLOCK_FNS:
                add("clock", f"time.{attr}()", line)
            elif base in scan.random and attr in _GLOBAL_RNG_FNS:
                add("rng", f"random.{attr}()", line)
            elif (base in scan.random and attr == "Random"
                    and not node.args and not node.keywords):
                add("rng", "random.Random() without a seed", line)
            elif base in scan.os and attr == "urandom":
                add("urandom", "os.urandom()", line)
            elif base in scan.os and attr == "getenv":
                add("env", "os.getenv()", line)
            elif (base in scan.datetime_mod.union(scan.datetime_cls)
                    and attr in _DATETIME_NOW_FNS):
                add("clock", f"datetime.{attr}()", line)
        elif desc[0] == "name":
            name = desc[1]
            if name in self.locals:
                return
            if name in scan.from_time:
                add("clock", f"{name}()", line)
            elif name in scan.from_random:
                add("rng", f"{name}()", line)
            elif name in scan.getenv_names:
                add("env", f"{name}()", line)
            elif name == "id" and len(node.args) == 1:
                add("id", "id()", line)
        elif desc[0] == "unknown":
            # os.environ.get(...): Attribute(Attribute(os, environ), get)
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("get", "pop", "setdefault", "items",
                                      "keys", "values", "copy")
                    and self._is_environ(func.value)):
                add("env", f"os.environ.{func.attr}()", line)

    def _is_environ(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.scan.environ_names
        return (isinstance(node, ast.Attribute) and node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id in self.scan.os)

    def _visit_subscript(self, node: ast.Subscript) -> None:
        if self._is_environ(node.value):
            how = ("os.environ[...] write"
                   if isinstance(node.ctx, (ast.Store, ast.Del))
                   else "os.environ[...] read")
            self._add_source("env", how, node.lineno)

    def _check_set_iter(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self._add_source("set-iter", "iteration over a set expression",
                             iter_node.lineno)

    def _visit_assign(self, node: Union[ast.Assign, ast.AugAssign,
                                        ast.AnnAssign]) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        how = "augassign" if isinstance(node, ast.AugAssign) else "assign"
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self.globals_decl:
                    self.facts.global_writes.append(
                        GlobalWrite(target.id, node.lineno, how))
            elif isinstance(target, ast.Subscript):
                base = target.value
                if (isinstance(base, ast.Name) and base.id not in self.locals
                        and base.id != "self"):
                    self.facts.global_writes.append(
                        GlobalWrite(base.id, node.lineno, "setitem"))
            elif isinstance(target, ast.Attribute):
                base = target.value
                if (isinstance(base, ast.Name) and base.id not in self.locals
                        and base.id != "self"
                        and base.id not in ("cls",)):
                    self.facts.global_writes.append(
                        GlobalWrite(base.id, node.lineno, "setattr"))


_SCHEDULER_METHODS = frozenset({"post", "at", "after"})


# ----------------------------------------------------------------------
# Module extraction
# ----------------------------------------------------------------------
def _scan_imports(tree: ast.Module,
                  facts: ModuleFacts) -> Tuple[_ImportScan, Set[str]]:
    scan = _ImportScan()
    imported: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                facts.imports[bound] = (alias.name, None)
                if alias.name == "random":
                    scan.random.add(bound)
                elif alias.name == "time":
                    scan.time.add(bound)
                elif alias.name == "os":
                    scan.os.add(bound)
                elif alias.name == "datetime":
                    scan.datetime_mod.add(bound)
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                # relative import: resolve against this module's package
                base_parts = facts.module.split(".")
                level = node.level or 0
                if level:
                    base_parts = base_parts[:-level]
                mod = ".".join(base_parts + (node.module.split(".")
                                             if node.module else []))
            else:
                mod = node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                facts.imports[bound] = (mod, alias.name)
                imported.add(bound)
                if mod == "time" and alias.name in _CLOCK_FNS:
                    scan.from_time.add(bound)
                elif mod == "random" and alias.name != "Random":
                    scan.from_random.add(bound)
                elif mod == "os" and alias.name == "getenv":
                    scan.getenv_names.add(bound)
                elif mod == "os" and alias.name == "environ":
                    scan.environ_names.add(bound)
                elif mod == "datetime" and alias.name in ("datetime", "date"):
                    scan.datetime_cls.add(bound)
    return scan, imported


def _mutating_calls(facts: FunctionFacts) -> None:
    """Post-pass: X.mutator(...) on non-local names = global writes."""
    locals_and_params = set(facts.var_types) | set(facts.var_funcs)
    for site in facts.calls:
        desc = site.desc
        if (desc[0] == "name_attr" and desc[2] in _MUTATOR_METHODS
                and desc[1] not in locals_and_params):
            facts.global_writes.append(
                GlobalWrite(desc[1], site.line, "mutate"))


def _hot_tagged(node: ast.AST, lines: Sequence[str]) -> bool:
    lineno = getattr(node, "lineno", 1)
    for check in (lineno, lineno - 1):
        if 1 <= check <= len(lines) and _HOT_TAG_RE.search(lines[check - 1]):
            return True
    for deco in getattr(node, "decorator_list", []):
        dline = getattr(deco, "lineno", lineno) - 1
        if 1 <= dline <= len(lines) and _HOT_TAG_RE.search(lines[dline - 1]):
            return True
    return False


def _extract_function(node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                      module: str, path: str, lines: Sequence[str],
                      scan: _ImportScan, module_funcs: Set[str],
                      imported: Set[str],
                      class_name: Optional[str] = None) -> FunctionFacts:
    qual = ".".join([module] + ([class_name] if class_name else [])
                    + [node.name])
    facts = FunctionFacts(qualname=qual, name=node.name, module=module,
                          path=path, line=node.lineno,
                          class_name=class_name,
                          hot_tagged=_hot_tagged(node, lines),
                          returns=_annotation_name(node.returns))
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        desc = _descriptor(target)
        facts.decorators.append(desc)
        if desc == ("name", "property"):
            facts.is_property = True
    walker = _BodyWalker(facts, scan, module_funcs, imported)
    walker.prepass(node, node.args)
    for stmt in node.body:
        walker._visit(stmt)
    _mutating_calls(facts)
    return facts


def _extract_class(node: ast.ClassDef, module: str, path: str,
                   lines: Sequence[str], scan: _ImportScan,
                   module_funcs: Set[str], imported: Set[str]) -> ClassFacts:
    cls = ClassFacts(qualname=f"{module}.{node.name}", name=node.name,
                     module=module, path=path, line=node.lineno)
    for base in node.bases:
        cls.bases.append(_descriptor(base))
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        desc = _descriptor(target)
        cls.decorators.append(desc)
        args = []
        if isinstance(deco, ast.Call):
            args = [a.value for a in deco.args
                    if isinstance(a, ast.Constant)
                    and isinstance(a.value, str)]
        cls.decorator_args.append((desc, args))
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _extract_function(stmt, module, path, lines, scan,
                                       module_funcs, imported,
                                       class_name=node.name)
            cls.methods[stmt.name] = method
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                            ast.Name):
            ann = _annotation_name(stmt.annotation)
            if ann:
                cls.attr_types.setdefault(stmt.target.id, []).append(
                    ("name", ann))
    # attribute types + stored bound methods from every method body
    for method in cls.methods.values():
        _collect_self_assignments(cls, method, module, path)
    return cls


def _collect_self_assignments(cls: ClassFacts, method: FunctionFacts,
                              module: str, path: str) -> None:
    """Mine ``self.x = Foo(...)`` / ``self.x = self.m`` patterns."""
    # Re-walk is avoided: the body walker already recorded local facts,
    # but self.* targets need the raw AST, so parse lazily per class —
    # instead we record them during extraction via refs/calls pairing.
    # (Populated by _extract_module, which has the AST at hand.)


def _mine_self_assigns(node: ast.ClassDef, cls: ClassFacts) -> None:
    for child in ast.walk(node):
        if not isinstance(child, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (child.targets if isinstance(child, ast.Assign)
                   else [child.target])
        value = child.value
        if isinstance(child, ast.AnnAssign):
            ann = _annotation_name(child.annotation)
            for target in targets:
                if (ann and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cls.attr_types.setdefault(target.attr, []).append(
                        ("name", ann))
        if value is None:
            continue
        for target in targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if isinstance(value, ast.Call):
                desc = _descriptor(value.func)
                if desc[0] in ("name", "name_attr"):
                    cls.attr_types.setdefault(target.attr, []).append(desc)
            elif (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"):
                cls.stored_methods.setdefault(target.attr, []).append(
                    value.attr)


def extract_module(path: Union[str, Path],
                   module: Optional[str] = None) -> ModuleFacts:
    """Parse ``path`` and extract all flow facts."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return extract_source(source, module=module or module_name_for(path),
                          path=str(path))


def _is_main_guard(node: ast.stmt) -> bool:
    """``if __name__ == "__main__":`` — not import-time code."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    return (isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
            and len(test.ops) == 1 and isinstance(test.ops[0], ast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value == "__main__")


def extract_source(source: str, module: str,
                   path: str = "<string>") -> ModuleFacts:
    lines = source.splitlines()
    tree = ast.parse(source, filename=path)
    facts = ModuleFacts(module=module, path=path)
    facts.skip_file, facts.suppressions = _collect_suppressions(lines)
    facts.suppression_lines = {line: set(ids)
                               for line, ids in facts.suppressions.items()}
    scan, imported = _scan_imports(tree, facts)
    module_funcs = {n.name for n in tree.body
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
    # module-level pseudo-function for import-time facts
    mod_fn = FunctionFacts(qualname=f"{module}.<module>", name="<module>",
                           module=module, path=path, line=1)
    walker = _BodyWalker(mod_fn, scan, module_funcs, imported)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _extract_function(stmt, module, path, lines, scan,
                                   module_funcs, imported)
            facts.functions[stmt.name] = fn
        elif isinstance(stmt, ast.ClassDef):
            cls = _extract_class(stmt, module, path, lines, scan,
                                 module_funcs, imported)
            _mine_self_assigns(stmt, cls)
            facts.classes[stmt.name] = cls
        elif _is_main_guard(stmt):
            continue
        else:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        facts.global_vars[target.id] = stmt.lineno
                value = stmt.value
                if (value is not None and len(targets) == 1
                        and isinstance(targets[0], ast.Name)):
                    table = _str_table_values(value)
                    if table is not None:
                        facts.str_tables[targets[0].id] = table
            walker._visit(stmt)
    facts.module_level = mod_fn
    return facts
