"""Rule catalogue and analysis manifests for SimSan-Flow.

The per-file linter (:mod:`repro.checks.lint`) sees one module at a
time; the flow analyzer sees the whole tree at once, so its rules are
about *relationships*: which functions the engine's event loop can
actually reach (``SS5xx``), and which code a sweep worker process can
execute (``SS6xx``).

``SS5xx`` — hot-path reachability & manifest integrity
    The hot-path set is *derived* from the call graph instead of
    hand-maintained: ``SS501`` keeps every manifest entry pointing at a
    real definition, ``SS502`` flags hot tags the event loop can no
    longer reach, and ``SS503`` flags event-loop-reachable functions
    nobody tagged.  ``SS510`` is the interprocedural companion to the
    per-file determinism rules: nondeterminism that flows *through* a
    helper into simulator state.

``SS6xx`` — worker/fork safety (the PR 7 persistent-pool contract)
    Warm workers outlive env changes and share import-time module
    state across tasks, so worker-reachable code must not mutate
    module-level state (``SS601``), must read the environment only
    through the reviewed lazy accessors that the per-task env snapshot
    re-resolves (``SS602``), and modules must not capture derived
    env/clock state at import time (``SS603``).

Suppressions use the same ``# simsan: skip=<ID>`` comment syntax as the
per-file linter, applied at the finding's line.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..lint.rules import Rule

_FLOW_RULES = [
    # ------------------------------------------------------------------
    # SS5xx — call-graph facts about the simulator's hot path.
    # ------------------------------------------------------------------
    Rule(
        id="SS501",
        name="stale-manifest-entry",
        summary="manifest entry names a qualname/module that no longer "
                "exists in the tree",
        hint="HOT_PATH_MANIFEST / ENGINE_MODULES / "
             "TRACE_CACHE_EXEMPT_MODULES must track the real tree; "
             "remove or respell the entry "
             "(src/repro/checks/lint/rules.py)",
        scope="all",
    ),
    Rule(
        id="SS502",
        name="stale-hot-tag",
        summary="function is tagged hot but the event loop cannot reach it",
        hint="the call graph shows no path from the engine entry points "
             "to this function; drop it from HOT_PATH_MANIFEST (or the "
             "'# hot:' tag), or fix the call-graph seam that should "
             "reach it",
        scope="all",
    ),
    Rule(
        id="SS503",
        name="untagged-hot-function",
        summary="function is reachable from the engine event loop but "
                "carries no hot tag",
        hint="add the qualname to HOT_PATH_MANIFEST (or a '# hot:' "
             "comment on the def line) so the hot-path discipline rules "
             "(SS2xx) apply to it; dunder methods are exempt",
        scope="all",
    ),
    Rule(
        id="SS510",
        name="tainted-sim-flow",
        summary="nondeterminism flows into simulator state through a "
                "helper call",
        hint="the callee (transitively) reads a wall clock, the "
             "process-global RNG, os.urandom, id(), the environment, or "
             "iterates an unordered set; thread a seeded rng / snapshot "
             "through instead, or add the reviewed accessor to "
             "TAINT_SANITIZERS with a comment saying why it cannot "
             "change results",
        scope="all",
    ),
    # ------------------------------------------------------------------
    # SS6xx — worker/fork safety for the persistent warm pool.
    # ------------------------------------------------------------------
    Rule(
        id="SS601",
        name="worker-shared-global",
        summary="worker-reachable code writes module-level mutable state",
        hint="warm workers reuse the interpreter across tasks, so "
             "module globals written during one task leak into the "
             "next; carry the state on an object the task owns, or "
             "suppress with a comment proving the write is idempotent "
             "and content-addressed (registries, memo caches)",
        scope="all",
    ),
    Rule(
        id="SS602",
        name="worker-raw-env-read",
        summary="worker-reachable code reads os.environ outside the "
                "reviewed env-snapshot accessors",
        hint="persistent workers only see the parent's environment "
             "through the per-task REPRO_* snapshot "
             "(repro.harness.turbo); read env via a WORKER_ENV_API "
             "accessor that re-resolves per task, or add this function "
             "to WORKER_ENV_API after review",
        scope="all",
    ),
    Rule(
        id="SS603",
        name="import-time-state-capture",
        summary="module-level call captures env/clock-derived state at "
                "import time",
        hint="the called helper (transitively) reads the environment or "
             "a clock, so its result is frozen at import and diverges "
             "between spawn and persistent (REPRO_POOL) workers; call "
             "it lazily inside a function instead",
        scope="all",
    ),
]

FLOW_RULES: Dict[str, Rule] = {r.id: r for r in _FLOW_RULES}

FLOW_RULE_IDS: FrozenSet[str] = frozenset(FLOW_RULES)

# ----------------------------------------------------------------------
# Analysis manifests (reviewed, like ENGINE_MODULES for SS204)
# ----------------------------------------------------------------------

#: Event-loop entry points: hot-path reachability starts here plus at
#: every callback scheduled onto an engine (``*.post/at/after`` args).
HOT_ROOTS: FrozenSet[str] = frozenset({
    "repro.sim.engine.Engine.run",
    "repro.sim.engine.Engine.step",
    "repro.sim.batched.engine.EpochEngine.run",
    "repro.sim.batched.engine.EpochEngine.step",
})

#: Packages whose functions participate in hot-path reachability — the
#: same deterministic domain the per-file SS1xx/SS2xx rules police.
HOT_DOMAIN = ("repro.sim", "repro.core")

#: Packages whose functions are determinism-taint *sinks*: anything
#: here (transitively) mutates simulator state, so reaching a
#: nondeterminism source from here breaks the bit-identity contract.
TAINT_SINK_DOMAIN = ("repro.sim", "repro.core")

#: Reviewed functions taint does not flow through.  Each entry is a
#: sanctioned boundary: either the seeded-rng / env-snapshot plumbing
#: itself, or an accessor whose result provably cannot change a
#: SimResult (engine selection is bit-identical by the golden
#: cross-backend CI job; the trace cache is content-addressed).
TAINT_SANITIZERS: FrozenSet[str] = frozenset({
    # engine selection: bit-identical backends, golden-enforced
    "repro.sim.backends.engine_from_env",
    "repro.sim.backends.resolve_engine",
    # lazy benchmark scaling: resolved before trace generation, part of
    # the spec fingerprint
    "repro.harness.scale.BenchScale.resolve",
    "repro.harness.scale.BenchScale.value",
    # the PR 7 env-snapshot API is the sanctioned env boundary
    "repro.harness.turbo.worker_env_snapshot",
    "repro.harness.turbo._apply_env",
    # opt-in observers: attach-time config, observer contract keeps
    # observed runs byte-identical (golden suite re-checked observed)
    "repro.checks.sanitize.sanitizer.sanitizer_from_env",
    "repro.checks.sanitize.sanitizer.sanitize_enabled",
    "repro.checks.sanitize.sanitizer.sanitize_interval",
    "repro.obs.schema.obs_from_env",
    # deterministic chaos injection (seeded, test-only)
    "repro.checks.chaos.chaos_from_env",
    # content-addressed trace cache: served bytes equal generated bytes
    "repro.workloads.tracecache.default_trace_cache",
    # checkpoint/preempt plumbing: restore-then-run is byte-identical to
    # an uninterrupted run (golden-enforced), so where a save-state lands
    # or whether one exists cannot change a SimResult
    "repro.harness.preempt.checkpoint_from_env",
    "repro.harness.preempt.guards_from_env",
    "repro.harness.preempt.preempt_grace",
})

#: Worker entry points: everything these reach runs inside a pool
#: worker process (SS601/SS602/SS603 apply to that closure).
WORKER_ROOTS: FrozenSet[str] = frozenset({
    "repro.harness.supervise._supervised_worker",
    "repro.harness.turbo._persistent_worker",
    "repro.harness.turbo._execute_task",
})

#: Reviewed lazy env accessors that worker-reachable code may call:
#: each one re-reads ``os.environ`` at call time, *after* the per-task
#: snapshot (:func:`repro.harness.turbo._apply_env`) has been applied,
#: so persistent-pool workers track the parent's environment exactly.
WORKER_ENV_API: FrozenSet[str] = frozenset({
    "repro.harness.turbo.worker_env_snapshot",
    "repro.harness.turbo._apply_env",
    "repro.harness.turbo.resolve_pool_mode",
    "repro.sim.backends.engine_from_env",
    "repro.sim.backends.resolve_engine",
    "repro.harness.scale.BenchScale.resolve",
    "repro.harness.supervise.RetryPolicy.from_env",
    "repro.harness.supervise.compute_timeout",
    "repro.checks.chaos.chaos_from_env",
    "repro.checks.sanitize.sanitizer.sanitizer_from_env",
    "repro.checks.sanitize.sanitizer.sanitize_enabled",
    "repro.checks.sanitize.sanitizer.sanitize_interval",
    "repro.obs.schema.obs_from_env",
    "repro.workloads.tracecache.default_trace_cache",
    "repro.harness.store.default_store",
    # checkpoint/preempt config re-resolves per task from the shipped
    # REPRO_CKPT_* / guard vars (repro.harness.preempt)
    "repro.harness.preempt.checkpoint_from_env",
    "repro.harness.preempt.guards_from_env",
    "repro.harness.preempt.preempt_grace",
})

#: Decorator-registry indirection: resolver function -> the decorator
#: whose decorated classes/functions it can instantiate by name.
#: (String-table registries like ``repro.sim.backends._BUILTINS`` are
#: discovered structurally and need no manifest.)
REGISTRY_RESOLVERS: Dict[str, str] = {
    "repro.policies.registry.make_policy": "repro.policies.registry.register",
}

#: Methods that schedule a callback onto an engine: a function
#: reference passed to one of these becomes an event-loop entry.
SCHEDULER_METHODS: FrozenSet[str] = frozenset({"post", "at", "after"})
