"""SimSan-Flow: whole-program call-graph / taint / worker-safety
analysis behind ``python -m repro check --flow``.

Where :mod:`repro.checks.lint` judges one file at a time, this package
builds a call graph of the whole tree and checks the *relationships*
the per-file rules cannot see: hot-path reachability versus the
hand-maintained manifest, nondeterminism flowing through helpers into
simulator state, and what the sweep pool's warm workers can actually
execute.  Stdlib-only, purely syntactic (no project imports are
executed), like the lint engine.
"""

from .analysis import FlowConfig, FlowReport, analyze_modules, run_flow
from .extract import ModuleFacts, extract_module, extract_source
from .graph import CallGraph, ProjectIndex, build_graph
from .rules import FLOW_RULE_IDS, FLOW_RULES

__all__ = [
    "FlowConfig",
    "FlowReport",
    "analyze_modules",
    "run_flow",
    "ModuleFacts",
    "extract_module",
    "extract_source",
    "CallGraph",
    "ProjectIndex",
    "build_graph",
    "FLOW_RULE_IDS",
    "FLOW_RULES",
]
