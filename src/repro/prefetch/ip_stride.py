"""IP-stride prefetcher (the paper's L2 prefetcher, per CRC-2).

Classic per-PC stride detection: a small direct-mapped table tracks, for each
instruction pointer, the last block address and last observed stride with a
saturating confidence counter.  Once the same stride repeats, the prefetcher
runs ``degree`` strides ahead.
"""

from __future__ import annotations

from typing import List

from ..sim.config import BLOCK_SIZE
from ..sim.request import MemRequest
from .base import Prefetcher


class _Entry:
    __slots__ = ("pc", "last_block", "stride", "confidence")

    def __init__(self) -> None:
        self.pc = -1
        self.last_block = -1
        self.stride = 0
        self.confidence = 0


class IPStridePrefetcher(Prefetcher):
    name = "ip_stride"

    def __init__(self, table_size: int = 64, degree: int = 4,
                 threshold: int = 2, max_confidence: int = 3) -> None:
        super().__init__()
        if table_size < 1 or degree < 1:
            raise ValueError("invalid IP-stride parameters")
        self.table = [_Entry() for _ in range(table_size)]
        self.table_size = table_size
        self.degree = degree
        self.threshold = threshold
        self.max_confidence = max_confidence

    def train(self, req: MemRequest, hit: bool) -> List[int]:
        self.trained += 1
        block = req.addr // BLOCK_SIZE
        entry = self.table[req.pc % self.table_size]

        if entry.pc != req.pc:
            # Table conflict: take over the entry, no prediction yet.
            entry.pc = req.pc
            entry.last_block = block
            entry.stride = 0
            entry.confidence = 0
            return []

        stride = block - entry.last_block
        entry.last_block = block
        if stride == 0:
            return []                   # same block; nothing learned

        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.max_confidence)
        else:
            entry.confidence -= 1
            if entry.confidence <= 0:
                entry.stride = stride
                entry.confidence = 1
            return []

        if entry.confidence < self.threshold:
            return []
        return [
            (block + i * entry.stride) * BLOCK_SIZE
            for i in range(1, self.degree + 1)
            if block + i * entry.stride > 0
        ]
