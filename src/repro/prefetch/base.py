"""Prefetcher interface.

A prefetcher is trained on every demand access at its cache level and
returns a list of byte addresses to prefetch into that level.  The cache
filters candidates that are already present or in flight and issues the rest
as :class:`~repro.sim.request.AccessType.PREFETCH` requests.
"""

from __future__ import annotations

from typing import List

from ..sim.request import MemRequest


class Prefetcher:
    """Base class.  Subclasses implement :meth:`train`."""

    name = "none"

    def __init__(self) -> None:
        self.issued = 0       # maintained by the cache when it sends one out
        self.trained = 0

    def train(self, req: MemRequest, hit: bool) -> List[int]:
        """Observe a demand access; return prefetch candidate addresses."""
        raise NotImplementedError
