"""Next-line prefetcher (the paper's L1 prefetcher, per CRC-2)."""

from __future__ import annotations

from typing import List

from ..sim.config import BLOCK_SIZE
from ..sim.request import MemRequest
from .base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    """On every demand access to block B, prefetch block B+1."""

    name = "next_line"

    def __init__(self, degree: int = 1) -> None:
        super().__init__()
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree

    def train(self, req: MemRequest, hit: bool) -> List[int]:
        self.trained += 1
        base = (req.addr // BLOCK_SIZE) * BLOCK_SIZE
        if self.degree == 1:
            return [base + BLOCK_SIZE]
        return [base + i * BLOCK_SIZE for i in range(1, self.degree + 1)]
