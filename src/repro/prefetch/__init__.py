"""Hardware prefetchers (CRC-2 methodology: next-line at L1, IP-stride at L2)."""

from .base import Prefetcher
from .nextline import NextLinePrefetcher
from .ip_stride import IPStridePrefetcher

__all__ = ["Prefetcher", "NextLinePrefetcher", "IPStridePrefetcher"]
