"""Plain-text table / bar rendering for benchmark output.

The benchmark harness regenerates each paper figure as an ASCII table (and
optionally a unicode bar strip), since the deliverable is the numbers and
their shape, not a bitmap.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 float_fmt: str = "{:.3f}") -> str:
    """Render rows as an aligned monospace table."""
    def cell(value) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_bars(values: Dict[str, float], width: int = 40,
                baseline: Optional[float] = None) -> str:
    """One unicode bar per entry, scaled to the max value."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in values)
    lines: List[str] = []
    for name, v in values.items():
        bar = "█" * max(1, int(round(width * v / peak)))
        mark = ""
        if baseline is not None:
            mark = "  (baseline)" if abs(v - baseline) < 1e-12 else ""
        lines.append(f"{name.ljust(label_w)} {bar} {v:.3f}{mark}")
    return "\n".join(lines)


def banner(title: str) -> str:
    line = "=" * max(60, len(title) + 8)
    return f"\n{line}\n=== {title}\n{line}"
