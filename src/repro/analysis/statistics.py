"""Multi-seed run statistics: means, dispersion, confidence intervals.

The paper reports single numbers per configuration; a reproduction on
synthetic traces should quantify seed-to-seed variation.  These helpers
summarize repeated measurements and decide whether two schemes' results are
separable at a given confidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class RunStatistics:
    """Summary of one metric over repeated (re-seeded) runs."""

    n: int
    mean: float
    std: float                 # sample standard deviation (ddof=1)
    ci_low: float              # confidence interval bounds for the mean
    ci_high: float
    confidence: float

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2

    def formatted(self) -> str:
        return (f"{self.mean:.4f} ± {self.ci_half_width:.4f} "
                f"(n={self.n}, {self.confidence:.0%} CI)")


def summarize(values: Sequence[float], confidence: float = 0.95
              ) -> RunStatistics:
    """Mean with a Student-t confidence interval."""
    vals = list(values)
    if not vals:
        raise ValueError("no measurements")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(vals)
    mean = sum(vals) / n
    if n == 1:
        return RunStatistics(1, mean, 0.0, mean, mean, confidence)
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    std = math.sqrt(var)
    t = _scipy_stats.t.ppf(0.5 + confidence / 2, df=n - 1)
    half = t * std / math.sqrt(n)
    return RunStatistics(n, mean, std, mean - half, mean + half, confidence)


def separable(a: Sequence[float], b: Sequence[float],
              alpha: float = 0.05) -> Tuple[bool, float]:
    """Welch's t-test: are the two samples' means distinguishable?

    Returns ``(significant, p_value)``.  Used to decide whether a reported
    scheme-vs-scheme gap survives seed noise.
    """
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least two measurements per group")
    t_stat, p_value = _scipy_stats.ttest_ind(list(a), list(b),
                                             equal_var=False)
    return bool(p_value < alpha), float(p_value)


def summarize_sweep(per_seed_tables: List[Dict[str, float]],
                    confidence: float = 0.95) -> Dict[str, RunStatistics]:
    """Summarize a {policy -> value} table measured across several seeds."""
    if not per_seed_tables:
        raise ValueError("no tables")
    policies = per_seed_tables[0].keys()
    out = {}
    for policy in policies:
        out[policy] = summarize(
            [table[policy] for table in per_seed_tables], confidence)
    return out
