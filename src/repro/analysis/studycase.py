"""The paper's study case (Fig. 2, Tables I and II), in closed form.

Section III-B walks six concurrent accesses from one core through a cache
level where every access spends 2 base cycles and every miss 6 additional
miss cycles, then derives each miss's MLP-based cost (Table I) and PMC
(Table II) by hand.  This module reproduces that analysis exactly — with
:mod:`fractions` arithmetic so ``7/3`` really is 7/3 — and doubles as an
independent per-cycle oracle for testing the event-driven
:class:`~repro.core.pmc.ConcurrencyMonitor` (which accrues over intervals).

Reconstructed timeline (1-indexed cycles, from the paper's narration):

======  =====  ===========  ============
access  kind   base cycles  miss cycles
======  =====  ===========  ============
A       miss   1-2          3-8
B       hit    3-4          —
C       miss   5-6          7-12
D       miss   7-8          9-14
E       miss   7-8          9-14
F       hit    8-9          —
======  =====  ===========  ============

Expected results: MLP-based cost A=5, C=D=E=7/3; PMC A=0, C=1, D=E=2;
active pure miss cycles = 5 (cycles 10-14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List


@dataclass(frozen=True)
class CaseAccess:
    """One access in a study-case timeline."""

    label: str
    start: int                 # first base cycle (1-indexed)
    is_miss: bool

    def base_interval(self, base_cycles: int) -> range:
        return range(self.start, self.start + base_cycles)

    def miss_interval(self, base_cycles: int, miss_cycles: int) -> range:
        if not self.is_miss:
            return range(0)
        first = self.start + base_cycles
        return range(first, first + miss_cycles)


@dataclass
class CaseResult:
    """Per-access costs plus the aggregate pure-miss accounting."""

    mlp_cost: Dict[str, Fraction] = field(default_factory=dict)
    pmc: Dict[str, Fraction] = field(default_factory=dict)
    is_pure: Dict[str, bool] = field(default_factory=dict)
    pure_miss_cycles: List[int] = field(default_factory=list)

    @property
    def total_pmc(self) -> Fraction:
        return sum(self.pmc.values(), Fraction(0))


def analyze_case(accesses: List[CaseAccess], base_cycles: int = 2,
                 miss_cycles: int = 6) -> CaseResult:
    """Cycle-exact MLP-cost and PMC analysis of a concurrent access pattern.

    Implements the definitions directly:

    * MLP-based cost (Qureshi et al.): each miss cycle is divided equally
      among all concurrently outstanding misses.
    * PMC (Section IV-A): a cycle contributes only if *no* access from the
      core is in its base cycles (an active pure miss cycle), again divided
      evenly among outstanding misses.
    """
    if len({a.label for a in accesses}) != len(accesses):
        raise ValueError("duplicate access labels")
    result = CaseResult()
    misses = [a for a in accesses if a.is_miss]
    for a in misses:
        result.mlp_cost[a.label] = Fraction(0)
        result.pmc[a.label] = Fraction(0)
        result.is_pure[a.label] = False

    last_cycle = max(
        (a.miss_interval(base_cycles, miss_cycles).stop for a in misses),
        default=0,
    )
    for cycle in range(1, last_cycle):
        base_active = any(
            cycle in a.base_interval(base_cycles) for a in accesses)
        outstanding = [
            a for a in misses
            if cycle in a.miss_interval(base_cycles, miss_cycles)
        ]
        if not outstanding:
            continue
        share = Fraction(1, len(outstanding))
        for a in outstanding:
            result.mlp_cost[a.label] += share
        if not base_active:
            result.pure_miss_cycles.append(cycle)
            for a in outstanding:
                result.pmc[a.label] += share
                result.is_pure[a.label] = True
    return result


#: Fig. 2's access pattern.
STUDY_CASE: List[CaseAccess] = [
    CaseAccess("A", start=1, is_miss=True),
    CaseAccess("B", start=3, is_miss=False),
    CaseAccess("C", start=5, is_miss=True),
    CaseAccess("D", start=7, is_miss=True),
    CaseAccess("E", start=7, is_miss=True),
    CaseAccess("F", start=8, is_miss=False),
]

#: Table I's expected MLP-based costs.
EXPECTED_MLP: Dict[str, Fraction] = {
    "A": Fraction(5),
    "C": Fraction(7, 3),
    "D": Fraction(7, 3),
    "E": Fraction(7, 3),
}

#: Table II's expected PMC values.
EXPECTED_PMC: Dict[str, Fraction] = {
    "A": Fraction(0),
    "C": Fraction(1),
    "D": Fraction(2),
    "E": Fraction(2),
}

#: Table II: "Active pure miss cycles: 5 (cycles 10-14)".
EXPECTED_PURE_CYCLES: List[int] = [10, 11, 12, 13, 14]


def paper_study_case() -> CaseResult:
    """Analyze Fig. 2's pattern (2 base cycles, 6 miss cycles)."""
    return analyze_case(STUDY_CASE, base_cycles=2, miss_cycles=6)
