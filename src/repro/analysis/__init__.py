"""Metrics, paper analytics (study case, C-AMAT, hardware cost), reporting."""

from .metrics import (
    geometric_mean,
    normalized_ipc,
    normalized_weighted_ipc,
    speedup_summary,
    total_ipc,
    weighted_speedup,
)
from .studycase import (
    EXPECTED_MLP,
    EXPECTED_PMC,
    EXPECTED_PURE_CYCLES,
    STUDY_CASE,
    CaseAccess,
    CaseResult,
    analyze_case,
    paper_study_case,
)
from .camat import CAMATBreakdown, camat_breakdown
from .hwcost import (
    PAPER_TABLE6_KB,
    CostItem,
    CostReport,
    care_concurrency_kb,
    care_cost,
    framework_costs,
)
from .reporting import banner, format_bars, format_table
from .statistics import RunStatistics, separable, summarize, summarize_sweep
from .charts import line_chart, scaling_chart

__all__ = [
    "geometric_mean", "normalized_ipc", "normalized_weighted_ipc",
    "speedup_summary", "total_ipc", "weighted_speedup",
    "EXPECTED_MLP", "EXPECTED_PMC", "EXPECTED_PURE_CYCLES", "STUDY_CASE",
    "CaseAccess", "CaseResult", "analyze_case", "paper_study_case",
    "CAMATBreakdown", "camat_breakdown",
    "PAPER_TABLE6_KB", "CostItem", "CostReport", "care_concurrency_kb",
    "care_cost", "framework_costs",
    "banner", "format_bars", "format_table",
    "RunStatistics", "separable", "summarize", "summarize_sweep",
    "line_chart", "scaling_chart",
]
