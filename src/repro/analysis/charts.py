"""Text line charts for scaling curves (Figs. 11-14 as terminal output).

The benchmark harness reports tables; for quick visual inspection of the
scaling trend, :func:`line_chart` renders multiple named series over a
shared x-axis as a fixed-grid ASCII plot — dependency-free and stable
enough to assert on in tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: glyphs assigned to series in insertion order
_GLYPHS = "ox*+#@%&"


def line_chart(x_values: Sequence[float],
               series: Dict[str, Sequence[float]],
               height: int = 12, width: int = 48,
               y_label: str = "", x_label: str = "") -> str:
    """Render ``series`` (name -> y values over ``x_values``) as text.

    Points are plotted on a ``height`` x ``width`` grid with linear
    scaling; later series overwrite earlier ones on collisions.  A legend
    maps glyphs to names.
    """
    if not x_values:
        raise ValueError("no x values")
    if not series:
        raise ValueError("no series")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")

    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return min(width - 1, int((x - x_min) / (x_max - x_min) * (width - 1)))

    def row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(height - 1, int((1.0 - frac) * (height - 1)))

    legend = []
    for glyph, (name, ys) in zip(_GLYPHS, series.items()):
        legend.append(f"{glyph}={name}")
        for x, y in zip(x_values, ys):
            grid[row(y)][col(x)] = glyph

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    lines.append(f"{y_max:8.3f} ┤" + "".join(grid[0]))
    for r in range(1, height - 1):
        lines.append(" " * 8 + " │" + "".join(grid[r]))
    lines.append(f"{y_min:8.3f} ┤" + "".join(grid[-1]))
    lines.append(" " * 9 + "└" + "─" * width)
    ticks = " " * 10 + f"{x_min:<8g}" + " " * max(0, width - 16) + f"{x_max:>8g}"
    lines.append(ticks)
    if x_label:
        lines.append(" " * 10 + x_label)
    lines.append(" " * 10 + "  ".join(legend))
    return "\n".join(lines)


def scaling_chart(per_core_tables: Dict[int, Dict[str, float]],
                  height: int = 12, width: int = 40) -> str:
    """Chart a Figs. 11-14 style result: {cores: {policy: speedup}}."""
    cores = sorted(per_core_tables)
    policies = list(per_core_tables[cores[0]])
    series = {p: [per_core_tables[c][p] for c in cores] for p in policies}
    return line_chart(cores, series, height=height, width=width,
                      y_label="speedup over LRU", x_label="cores")
