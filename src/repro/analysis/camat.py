"""C-AMAT: the Concurrent Average Memory Access Time model (Section II-B).

PMC is derived from C-AMAT (Sun & Wang), so we expose the model's
quantities computed from the PML's measurements:

* ``C-AMAT = memory active cycles / total accesses`` — the concurrency-aware
  analogue of AMAT; overlapped cycles are counted once, not per access.
* Decomposition ``C-AMAT = CH + pMR * pAMP`` where ``CH`` is the hit
  (base-cycle) contribution, ``pMR`` the pure miss rate and ``pAMP`` the
  average pure-miss penalty per pure miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pmc import CoreConcurrencyStats


@dataclass(frozen=True)
class CAMATBreakdown:
    """C-AMAT and its pure-miss decomposition for one core at one level."""

    camat: float
    pure_miss_rate: float      # pMR
    pamp: float                # avg pure-miss cycles per pure miss
    active_cycles: float
    pure_miss_cycles: float
    accesses: int

    @property
    def pure_miss_term(self) -> float:
        """The ``pMR * pAMP`` half of the decomposition."""
        return self.pure_miss_rate * self.pamp

    @property
    def hit_term(self) -> float:
        """The concurrent-hit half (everything not pure-miss stall)."""
        return self.camat - self.pure_miss_term


def camat_breakdown(stats: CoreConcurrencyStats) -> CAMATBreakdown:
    """Compute the C-AMAT quantities from PML measurements."""
    accesses = stats.accesses
    camat = stats.active_cycles / accesses if accesses else 0.0
    pamp = (stats.pure_miss_cycles / stats.pure_misses
            if stats.pure_misses else 0.0)
    return CAMATBreakdown(
        camat=camat,
        pure_miss_rate=stats.pure_miss_rate,
        pamp=pamp,
        active_cycles=stats.active_cycles,
        pure_miss_cycles=stats.pure_miss_cycles,
        accesses=accesses,
    )
