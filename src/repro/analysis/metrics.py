"""Performance metrics used throughout the evaluation (Section VI).

* **Normalized IPC** — multi-copy workloads report the sum of per-core IPC
  under a scheme divided by the same under LRU (Figs. 7, 9, 11-14).
* **Weighted speedup** — for mixed workloads, ``Σ IPC_shared / IPC_alone``,
  normalized to LRU (Fig. 10); the standard shared-cache metric the paper
  cites from CRC-2.
* **Geometric mean** — how the paper aggregates per-workload speedups.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from ..sim.stats import SimResult


def geometric_mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError(f"geometric mean requires positive values: {vals}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def total_ipc(result: SimResult) -> float:
    """Sum of per-core IPC (the multi-copy throughput measure)."""
    return sum(result.ipc)


def normalized_ipc(result: SimResult, baseline: SimResult) -> float:
    """Throughput normalized to the LRU baseline run (Figs. 7/9/11-14)."""
    base = total_ipc(baseline)
    if base <= 0:
        raise ValueError("baseline IPC is zero")
    return total_ipc(result) / base


def weighted_speedup(result: SimResult,
                     alone_ipc: Sequence[float]) -> float:
    """Σ IPC_shared,i / IPC_alone,i over cores (shared-cache fairness metric)."""
    if len(alone_ipc) != len(result.ipc):
        raise ValueError("alone-IPC vector length mismatch")
    total = 0.0
    for shared, alone in zip(result.ipc, alone_ipc):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += shared / alone
    return total


def normalized_weighted_ipc(result: SimResult, baseline: SimResult,
                            alone_ipc: Sequence[float]) -> float:
    """Fig. 10's y-axis: weighted speedup relative to LRU's."""
    return (weighted_speedup(result, alone_ipc)
            / weighted_speedup(baseline, alone_ipc))


def speedup_summary(results: Dict[str, Dict[str, SimResult]],
                    baseline: str = "lru") -> Dict[str, Dict[str, float]]:
    """Normalized IPC per (workload, policy) plus a GM row.

    ``results[workload][policy]`` -> SimResult.  Returns
    ``table[workload][policy]`` -> normalized IPC, with an extra
    ``table["GEOMEAN"]`` row aggregating each policy.
    """
    table: Dict[str, Dict[str, float]] = {}
    per_policy: Dict[str, List[float]] = {}
    for workload, by_policy in results.items():
        if baseline not in by_policy:
            raise KeyError(f"{workload}: no {baseline!r} baseline run")
        base = by_policy[baseline]
        row = {}
        for policy, res in by_policy.items():
            value = normalized_ipc(res, base)
            row[policy] = value
            per_policy.setdefault(policy, []).append(value)
        table[workload] = row
    table["GEOMEAN"] = {
        policy: geometric_mean(vals) for policy, vals in per_policy.items()
    }
    return table
