"""Hardware cost accounting (Tables V and VI).

Section V-G derives CARE's storage for a 16-way 2MB LLC with a 64-entry
MSHR, 64 sampled sets and a 16K-entry SHT: 26.64KB total, of which 6.76KB
buys concurrency awareness.  :func:`care_cost` reproduces that arithmetic
parametrically (any LLC geometry), and :func:`framework_costs` regenerates
the Table VI comparison, with each baseline's budget computed from its own
published structure sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

KB = 8 * 1024  # bits per KB


@dataclass(frozen=True)
class CostItem:
    name: str
    bits: int
    used_for: str

    @property
    def kb(self) -> float:
        return self.bits / KB


@dataclass(frozen=True)
class CostReport:
    framework: str
    items: Tuple[CostItem, ...]
    uses_pc: bool
    concurrency_aware: bool

    @property
    def total_bits(self) -> int:
        return sum(i.bits for i in self.items)

    @property
    def total_kb(self) -> float:
        return self.total_bits / KB

    def kb_for(self, used_for: str) -> float:
        return sum(i.bits for i in self.items if i.used_for == used_for) / KB


def care_cost(blocks: int = 32768, ways: int = 16, mshr_entries: int = 64,
              n_cores: int = 1, sampled_sets: int = 64,
              sht_entries: int = 16384) -> CostReport:
    """Table V, parametric.  Defaults reproduce the paper's 2MB/16-way LLC."""
    sampled_blocks = sampled_sets * ways
    items = (
        CostItem("NoNewAccess", 1 * n_cores, "PMC"),
        CostItem("reciprocal lookup table", mshr_entries * 32, "PMC"),
        CostItem("PMC field (MSHR)", mshr_entries * 32, "PMC"),
        CostItem("PMC_low", 32, "DTRM"),
        CostItem("PMC_high", 32, "DTRM"),
        CostItem("TCM", 32, "DTRM"),
        CostItem("EPV (2b/block)", 2 * blocks, "metadata"),
        CostItem("prefetch (1b/block)", 1 * blocks, "metadata"),
        CostItem("signature (14b/sampled block)", 14 * sampled_blocks, "metadata"),
        CostItem("R (1b/sampled block)", 1 * sampled_blocks, "metadata"),
        CostItem("PMCS (2b/sampled block)", 2 * sampled_blocks, "metadata"),
        CostItem("RC (3b/SHT entry)", 3 * sht_entries, "SHT"),
        CostItem("PD (3b/SHT entry)", 3 * sht_entries, "SHT"),
    )
    return CostReport("CARE", items, uses_pc=True, concurrency_aware=True)


def care_concurrency_kb(report: CostReport) -> float:
    """The concurrency-aware share of CARE's budget (paper: 6.76KB).

    PMC measurement + DTRM + the PMCS metadata + the PD half of the SHT —
    everything a locality-only SHiP++-like scheme would not need.
    """
    extra = 0.0
    for item in report.items:
        if item.used_for in ("PMC", "DTRM"):
            extra += item.bits
        elif item.name.startswith(("PMCS", "PD")):
            extra += item.bits
    return extra / KB


# ----------------------------------------------------------------------
# Table VI: the compared frameworks, from their published structures.
# ----------------------------------------------------------------------

def _lru_cost(blocks: int) -> CostReport:
    # True LRU: 4-bit recency per block for 16 ways.
    return CostReport("LRU", (
        CostItem("recency (4b/block)", 4 * blocks, "metadata"),
    ), uses_pc=False, concurrency_aware=False)


def _sbar_cost(blocks: int, mshr_entries: int) -> CostReport:
    # MLP-aware LIN: LRU recency + 3b quantized cost per block + cost
    # measurement in the MSHR + set-dueling PSEL.
    return CostReport("SBAR(MLP)", (
        CostItem("recency (4b/block)", 4 * blocks, "metadata"),
        CostItem("mlp-cost (3b/block)", 3 * blocks, "metadata"),
        CostItem("cost field (MSHR)", mshr_entries * 32, "MLP"),
        CostItem("PSEL + leader map", 10 + 64, "dueling"),
    ), uses_pc=False, concurrency_aware=True)


def _shippp_cost(blocks: int, ways: int, sampled_sets: int,
                 shct_entries: int) -> CostReport:
    # Table VI charges SHiP++ for RRPV, sampled-set signatures/outcome and
    # the SHCT (the prefetch bit is only itemized for CARE).
    sampled_blocks = sampled_sets * ways
    return CostReport("SHiP++", (
        CostItem("RRPV (2b/block)", 2 * blocks, "metadata"),
        CostItem("signature (14b/sampled block)", 14 * sampled_blocks, "metadata"),
        CostItem("outcome (1b/sampled block)", 1 * sampled_blocks, "metadata"),
        CostItem("SHCT (3b/entry)", 3 * shct_entries, "SHCT"),
    ), uses_pc=True, concurrency_aware=False)


def _hawkeye_cost(blocks: int, ways: int, sampled_sets: int) -> CostReport:
    sampled_blocks = sampled_sets * ways
    return CostReport("Hawkeye", (
        CostItem("RRIP (3b/block)", 3 * blocks, "metadata"),
        CostItem("predictor (3b x 8K)", 3 * 8192, "predictor"),
        CostItem("sampler (8x assoc history)",
                 sampled_sets * 8 * ways * (13 + 3), "OPTgen"),
    ), uses_pc=True, concurrency_aware=False)


def _glider_cost(blocks: int, ways: int, sampled_sets: int) -> CostReport:
    return CostReport("Glider", (
        CostItem("RRIP (3b/block)", 3 * blocks, "metadata"),
        CostItem("ISVM tables (2048 x 16 x 8b)", 2048 * 16 * 8, "predictor"),
        CostItem("PCHR (5 x 16b/core)", 5 * 16, "predictor"),
        CostItem("sampler (8x assoc history)",
                 sampled_sets * 8 * ways * (13 + 3), "OPTgen"),
    ), uses_pc=True, concurrency_aware=False)


def _mockingjay_cost(blocks: int, ways: int, sampled_sets: int) -> CostReport:
    return CostReport("Mockingjay", (
        CostItem("ETR (5b/block)", 5 * blocks, "metadata"),
        CostItem("RDP (4K x 12b)", 4096 * 12, "predictor"),
        CostItem("sampled cache (5/4x assoc)",
                 sampled_sets * (5 * ways // 4) * (10 + 11 + 8), "sampler"),
    ), uses_pc=True, concurrency_aware=False)


def framework_costs(blocks: int = 32768, ways: int = 16,
                    mshr_entries: int = 64, sampled_sets: int = 64,
                    sht_entries: int = 16384) -> List[CostReport]:
    """Table VI's rows, recomputed from structure sizes."""
    return [
        _lru_cost(blocks),
        _sbar_cost(blocks, mshr_entries),
        _shippp_cost(blocks, ways, sampled_sets, sht_entries),
        _hawkeye_cost(blocks, ways, sampled_sets),
        _glider_cost(blocks, ways, sampled_sets),
        _mockingjay_cost(blocks, ways, sampled_sets),
        care_cost(blocks, ways, mshr_entries, 1, sampled_sets, sht_entries),
    ]


#: the values Table VI prints, for comparison in the benchmark output
PAPER_TABLE6_KB: Dict[str, float] = {
    "LRU": 16.0,
    "SBAR(MLP)": 28.09,
    "SHiP++": 16.0,
    "Hawkeye": 30.94,
    "Glider": 61.6,
    "Mockingjay": 31.91,
    "CARE": 26.64,
}
