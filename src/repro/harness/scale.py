"""Benchmark scale configuration.

Historically :mod:`repro.harness.experiment` read the ``REPRO_BENCH_*``
environment variables once at import time, which made it impossible for
tests or the CLI to change scale programmatically.  :class:`BenchScale`
replaces those module constants: the environment still provides the
defaults, but the active scale is a process-wide object that can be
swapped with :func:`set_scale` or temporarily with :func:`scale_override`.

Knobs (environment variable, default):

* ``records``   — measured records per core (``REPRO_BENCH_RECORDS``, 6000)
* ``workloads`` — SPEC workloads per figure sweep (``REPRO_BENCH_WORKLOADS``,
  10; 30 reproduces the full Table VIII set)
* ``mixes``     — Fig. 10 mixed workloads (``REPRO_BENCH_MIXES``, 10; the
  paper runs 100)
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Mapping, Optional

DEFAULT_RECORDS = 6000
DEFAULT_WORKLOADS = 10
DEFAULT_MIXES = 10


@dataclass(frozen=True)
class BenchScale:
    """How big figure sweeps run (trace length / workload counts)."""

    records: int = DEFAULT_RECORDS
    workloads: int = DEFAULT_WORKLOADS
    mixes: int = DEFAULT_MIXES

    def __post_init__(self) -> None:
        if self.records < 1 or self.workloads < 1 or self.mixes < 1:
            raise ValueError("BenchScale values must be >= 1")

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "BenchScale":
        """Scale described by the ``REPRO_BENCH_*`` environment variables."""
        env = os.environ if env is None else env
        return cls(
            records=int(env.get("REPRO_BENCH_RECORDS", DEFAULT_RECORDS)),
            workloads=int(env.get("REPRO_BENCH_WORKLOADS", DEFAULT_WORKLOADS)),
            mixes=int(env.get("REPRO_BENCH_MIXES", DEFAULT_MIXES)),
        )


_active: Optional[BenchScale] = None


def get_scale() -> BenchScale:
    """The active scale (first use reads the environment)."""
    global _active
    if _active is None:
        _active = BenchScale.from_env()
    return _active


def set_scale(scale: Optional[BenchScale]) -> None:
    """Install ``scale`` process-wide; ``None`` re-reads the environment
    on next :func:`get_scale`."""
    global _active
    _active = scale


@contextmanager
def scale_override(**changes: int) -> Iterator[BenchScale]:
    """Temporarily adjust scale fields, e.g. ``scale_override(records=500)``."""
    previous = _active
    scale = replace(get_scale(), **changes)
    set_scale(scale)
    try:
        yield scale
    finally:
        set_scale(previous)
