"""Seed-replicated experiments with statistical summaries.

Single-seed results at reduced scale are noisy; this module repeats a
speedup measurement across trace seeds and reports per-policy
:class:`~repro.analysis.statistics.RunStatistics`, plus pairwise
separability verdicts, so claims like "CARE beats SHiP++" can be made (or
declined) honestly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.metrics import normalized_ipc
from ..analysis.statistics import RunStatistics, separable, summarize_sweep
from ..sim.config import SystemConfig
from ..sim.system import System
from ..workloads.mixes import multicopy_traces


def replicated_speedups(workload: str, policies: Sequence[str],
                        n_cores: int = 4, prefetch: bool = True,
                        suite: str = "spec", n_records: int = 4000,
                        seeds: Sequence[int] = (0, 1, 2),
                        confidence: float = 0.95
                        ) -> Dict[str, RunStatistics]:
    """Speedup over LRU for each policy, summarized across seeds."""
    if "lru" in policies:
        policies = [p for p in policies if p != "lru"]
    tables: List[Dict[str, float]] = []
    for seed in seeds:
        traces = [t.records for t in multicopy_traces(
            workload, n_cores, 2 * n_records, seed=1000 + seed, suite=suite)]
        cfg = SystemConfig.default(n_cores)

        def run(policy: str):
            return System(cfg, traces, llc_policy=policy, prefetch=prefetch,
                          seed=seed, measure_records=n_records,
                          warmup_records=n_records).run()

        base = run("lru")
        tables.append({p: normalized_ipc(run(p), base) for p in policies})
    return summarize_sweep(tables, confidence=confidence)


def pairwise_verdicts(workload: str, pair: Tuple[str, str],
                      n_cores: int = 4, prefetch: bool = True,
                      suite: str = "spec", n_records: int = 4000,
                      seeds: Sequence[int] = (0, 1, 2, 3),
                      alpha: float = 0.05) -> Tuple[bool, float]:
    """Is policy ``pair[0]`` separably different from ``pair[1]``?

    Returns (significant, p_value) over per-seed speedups.
    """
    samples: Dict[str, List[float]] = {pair[0]: [], pair[1]: []}
    for seed in seeds:
        stats = replicated_speedups(
            workload, list(pair), n_cores=n_cores, prefetch=prefetch,
            suite=suite, n_records=n_records, seeds=[seed])
        for p in pair:
            samples[p].append(stats[p].mean)
    return separable(samples[pair[0]], samples[pair[1]], alpha=alpha)
