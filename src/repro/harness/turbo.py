"""Sweep throughput: persistent warm workers (+ the sweep benchmark).

DESIGN.md §13 closed the per-event front: scheduling is a minority of
wall time and no compiled backend is available, so the remaining
order-of-magnitude lever is *sweep-level* amortization.  A paper-scale
campaign runs thousands of short points, and the spawn pool
(:class:`~repro.harness.supervise.SupervisedPool`) pays process fork +
interpreter/numpy import + synthetic trace regeneration per point.  This
module keeps a pool of long-lived workers that fork once with imports
hot and serve tasks over pipes; with the content-addressed
:class:`~repro.workloads.tracecache.TraceCache` beside it, a warm point
pays for simulation only.

Semantics are the spawn pool's, by construction: both flavors route
every bad point through
:func:`~repro.harness.supervise.classify_failure`, the watchdog kills a
hung *worker* (not the pool) and the pool respawns it, crashes are
attributed by exit code and pid, chaos disruptive faults stay
worker-only, and SIGINT/manifest behavior lives in the caller
(:func:`repro.harness.runner.run_many`) unchanged.  ``REPRO_POOL=spawn``
selects the old process-per-task path; ``persistent`` (the default)
selects this one.

One semantic addition the spawn pool never needed: workers outlive env
changes in the parent, so every task ships a snapshot of the parent's
``REPRO_*`` environment (:func:`worker_env_snapshot`) and the worker
applies it before executing — engine selection, chaos profile, and
trace-cache location follow the parent explicitly instead of relying on
fork-time inheritance.
"""

from __future__ import annotations

import atexit
import logging
import os
import time
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

from ..sim.stats import SimResult
from . import preempt
from .preempt import PREEMPT_ERROR
from .spec import ExperimentSpec
from .supervise import (
    CRASH_ERROR,
    TIMEOUT_ERROR,
    FailedResult,
    PoolUnavailable,
    RetryPolicy,
    SweepInterrupted,
    SweepSupervisor,
    classify_failure,
)

log = logging.getLogger(__name__)

POOL_ENV = "REPRO_POOL"
POOL_MODES = ("persistent", "spawn")

#: sentinel distinguishing "recv from the pipe" from "payload is None
#: because the worker died" in the pool's reap path
_UNRECEIVED = object()


def resolve_pool_mode(env: Optional[Dict[str, str]] = None) -> str:
    """``REPRO_POOL`` -> ``"persistent"`` (default) or ``"spawn"``."""
    raw = (env if env is not None else os.environ).get(POOL_ENV, "")
    mode = raw.strip().lower()
    if not mode:
        return "persistent"
    if mode in POOL_MODES:
        return mode
    log.warning("unknown %s=%r; using 'persistent' (options: %s)",
                POOL_ENV, raw, "|".join(POOL_MODES))
    return "persistent"


def worker_env_snapshot() -> Dict[str, str]:
    """The parent's ``REPRO_*`` environment, shipped with every task."""
    return {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}


def _apply_env(env: Dict[str, str]) -> None:
    """Make the worker's ``REPRO_*`` env equal the shipped snapshot."""
    for key in [k for k in os.environ
                if k.startswith("REPRO_") and k not in env]:
        del os.environ[key]
    for key, value in env.items():
        if os.environ.get(key) != value:
            os.environ[key] = value


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _execute_task(msg: Dict[str, Any]) -> Dict[str, Any]:
    """Run one task message; report failures as payloads, never raise."""
    start = time.monotonic()
    notes: Dict[str, Any] = {}
    previous_term = None
    try:
        from ..checks.chaos import chaos_from_env, inject_execute
        _apply_env(msg.get("env", {}))
        preempt.clear_preempt()   # a late signal for a previous task
        if preempt.checkpoint_from_env() is not None:
            # Only checkpointed tasks trade SIGTERM for a clean preempt;
            # the handler is restored below so an *idle* warm worker
            # keeps default teardown (terminate() stays instant).
            previous_term = preempt.install_preempt_handler()
        spec = ExperimentSpec.from_dict(msg["spec"])
        chaos = chaos_from_env()
        if chaos is not None:
            inject_execute(chaos, spec.key(), msg.get("attempt", 0),
                           disruptive_ok=True)
        result = spec.execute(notes=notes)
        payload: Dict[str, Any] = {"ok": True, "result": result.to_dict(),
                                   "duration": time.monotonic() - start}
    except preempt.PreemptedError as exc:
        payload = {"ok": False, "preempted": True, "error": PREEMPT_ERROR,
                   "message": str(exc),
                   "ckpt": {"path": exc.path, "events": exc.events},
                   "duration": time.monotonic() - start}
    except BaseException as exc:   # report absolutely everything
        import traceback as tb_mod
        payload = {"ok": False, "error": type(exc).__name__,
                   "message": str(exc),
                   "traceback": tb_mod.format_exc()[-4000:],
                   "duration": time.monotonic() - start}
    finally:
        preempt.restore_preempt_handler(previous_term)
    if notes:
        payload["notes"] = notes
    return payload


def _persistent_worker(conn: Any) -> None:
    """Long-lived child entry point: serve tasks until EOF/sentinel.

    Chaos disruptive faults (hang/kill) fire inside :func:`_execute_task`
    here, where they cost one sacrificial worker: the parent's watchdog
    kills this process and the pool respawns a fresh one.
    """
    # Workers forked mid-sweep inherit the supervisor's SIGINT/SIGTERM
    # handlers, which only set a flag — a worker keeping them would
    # survive terminate() and hang every joiner (multiprocessing's own
    # atexit join included).  Signal discipline belongs to the parent.
    import signal
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (OSError, ValueError):
            pass
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:          # orderly shutdown
            break
        payload = _execute_task(msg)
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):   # parent gave up on us
            break
        if payload.get("preempted"):
            # A preempt is a wind-down request (watchdog, resource
            # guard, or operator signal): exit so the parent respawns a
            # fresh worker rather than reusing this one.
            break
    try:
        conn.close()
    except OSError:
        pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _PoolWorker:
    """One warm worker process, busy or idle."""

    __slots__ = ("proc", "conn", "spec", "key", "attempt", "started",
                 "deadline")

    def __init__(self, proc: Any, conn: Any) -> None:
        self.proc = proc
        self.conn = conn
        self.spec: Optional[ExperimentSpec] = None
        self.key = ""
        self.attempt = 0
        self.started = 0.0
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.spec is not None

    def assign(self, spec: ExperimentSpec, attempt: int, started: float,
               deadline: Optional[float]) -> None:
        self.spec = spec
        self.key = spec.key()
        self.attempt = attempt
        self.started = started
        self.deadline = deadline

    def clear(self) -> None:
        self.spec = None
        self.key = ""
        self.attempt = 0
        self.started = 0.0
        self.deadline = None


class PersistentPool:
    """Warm worker pool with the spawn pool's supervision semantics.

    Workers fork once (imports, numpy, and the trace-cache memo already
    hot) and serve many tasks; a worker is killed and respawned only
    when *its* point hangs past the watchdog deadline or the process
    dies.  Construction is cheap — processes start lazily on the first
    :meth:`run` — and the pool survives across ``run_many`` calls (see
    :func:`shared_pool`), which is where the amortization comes from.
    """

    def __init__(self, n_workers: int, poll_interval: float = 0.05) -> None:
        self.n_workers = max(1, n_workers)
        self.poll_interval = poll_interval
        self._workers: List[_PoolWorker] = []
        self._ctx: Any = None
        self._mp_wait: Any = None

    # -- lifecycle ------------------------------------------------------
    def _context(self) -> Any:
        if self._ctx is None:
            try:
                import multiprocessing as mp
                from multiprocessing.connection import wait as mp_wait
            except ImportError as exc:   # stripped-down stdlib
                raise PoolUnavailable(exc) from exc
            self._ctx = mp.get_context()
            self._mp_wait = mp_wait
            # Registered only now, *after* multiprocessing installed its
            # own atexit join: LIFO order then runs our orderly shutdown
            # (sentinel, then terminate-with-kill-escalation) before
            # multiprocessing tries to join the workers.
            _register_atexit()
        return self._ctx

    def _spawn(self) -> _PoolWorker:
        ctx = self._context()
        try:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_persistent_worker,
                               args=(child_conn,), daemon=True)
            proc.start()
        except (OSError, PermissionError, ValueError) as exc:
            raise PoolUnavailable(exc) from exc
        child_conn.close()
        return _PoolWorker(proc, parent_conn)

    def ensure_started(self) -> None:
        """Cull dead workers and (re)fill the pool to ``n_workers``."""
        self._workers = [w for w in self._workers if w.proc.is_alive()]
        while len(self._workers) < self.n_workers:
            self._workers.append(self._spawn())

    def _replenish(self) -> None:
        """Best-effort refill mid-run; raise only if the pool is empty."""
        while len(self._workers) < self.n_workers:
            try:
                self._workers.append(self._spawn())
            except PoolUnavailable:
                if not self._workers:
                    raise
                log.warning("could not respawn a pool worker; continuing "
                            "with %d", len(self._workers))
                break

    def _discard(self, worker: _PoolWorker) -> None:
        """Remove ``worker`` from the pool, killing the process."""
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.terminate()
        worker.proc.join(1.0)
        if worker.proc.is_alive():   # SIGTERM ignored — escalate
            worker.proc.kill()
            worker.proc.join(1.0)

    def _kill_busy(self) -> None:
        for worker in [w for w in self._workers if w.busy]:
            self._discard(worker)

    def shutdown(self) -> None:
        """Stop every worker (sentinel first, then force)."""
        for worker in list(self._workers):
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self._discard(worker)
        self._workers = []

    # -- execution ------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec],
            on_success: Callable[[ExperimentSpec, SimResult, float], None],
            on_failure: Callable[[FailedResult], None],
            on_retry: Optional[Callable[[ExperimentSpec, int, str], None]]
            = None, *,
            retry: RetryPolicy,
            timeout_for: Callable[[ExperimentSpec], Optional[float]],
            supervisor: Optional[SweepSupervisor] = None,
            keep_going: bool = True) -> None:
        """Resolve every spec on the warm pool (SupervisedPool.run API).

        Raises :class:`PoolUnavailable` when no worker can be forked
        (the runner falls back to serial) and :class:`SweepInterrupted`
        on a supervised signal.  On any exception, busy workers are
        killed (their tasks are abandoned) but idle warm workers
        survive for the next call.
        """
        self.ensure_started()
        mp_wait = self._mp_wait
        env = worker_env_snapshot()

        # (spec, attempt, not-before) — retries wait out their backoff
        queue: List[Tuple[ExperimentSpec, int, float]] = [
            (spec, 0, 0.0) for spec in specs]
        aborted = False
        guards = preempt.guards_from_env()
        guard_next = 0.0

        def dispatch(worker: _PoolWorker, spec: ExperimentSpec,
                     attempt: int) -> bool:
            now = time.monotonic()
            try:
                worker.conn.send({"spec": spec.to_dict(),
                                  "attempt": attempt, "env": env})
            except (BrokenPipeError, OSError):
                self._discard(worker)
                return False
            timeout = timeout_for(spec)
            worker.assign(spec, attempt, now,
                          None if timeout is None else now + timeout)
            return True

        def requeue(spec: ExperimentSpec, key: str, attempt: int,
                    error: str) -> None:
            if on_retry is not None:
                on_retry(spec, attempt, error)
            if supervisor is not None:
                supervisor.record_incident("retry", spec, error=error,
                                           attempt=attempt)
            delay = retry.delay(key, attempt)
            queue.append((spec, attempt + 1, time.monotonic() + delay))

        def fail(failure: FailedResult) -> None:
            nonlocal aborted
            on_failure(failure)
            if not keep_going:
                aborted = True

        def classify(spec: ExperimentSpec, key: str, attempt: int,
                     kind: str, error: str, message: str, traceback: str,
                     duration: float, pid: Optional[int],
                     ckpt: Optional[Dict[str, Any]] = None) -> None:
            classify_failure(
                retry, supervisor, spec, attempt, kind, error, message,
                traceback, duration,
                lambda: requeue(spec, key, attempt, error), fail,
                worker=pid, ckpt=ckpt)

        def reap(worker: _PoolWorker, payload: Any = _UNRECEIVED) -> None:
            """A busy worker's pipe is readable: payload or EOF.

            ``payload`` is passed pre-received when
            :func:`repro.harness.preempt.try_preempt` already drained
            the pipe.
            """
            if payload is _UNRECEIVED:
                try:
                    payload = worker.conn.recv()
                except (EOFError, OSError):
                    payload = None
            spec, key, attempt = worker.spec, worker.key, worker.attempt
            started = worker.started
            pid = worker.proc.pid
            assert spec is not None
            if payload is not None and supervisor is not None:
                notes = payload.get("notes") or {}
                if "resumed" in notes:
                    supervisor.record_incident("resumed", spec,
                                               events=notes["resumed"])
                if "quarantined" in notes:
                    supervisor.record_incident(
                        "ckpt-quarantined", spec,
                        reason=notes["quarantined"])
            if payload is None:      # worker died mid-task
                self._discard(worker)
                code = worker.proc.exitcode
                classify(spec, key, attempt, "crash", CRASH_ERROR,
                         f"worker exited with code {code}", "",
                         time.monotonic() - started, pid)
            elif payload.get("ok"):
                worker.clear()       # stays warm for the next task
                on_success(spec, SimResult.from_dict(payload["result"]),
                           payload["duration"])
            elif payload.get("preempted"):
                self._discard(worker)   # the worker exits after a preempt
                classify(spec, key, attempt, "preempted", payload["error"],
                         payload["message"], "",
                         payload.get("duration", 0.0), pid,
                         ckpt=payload.get("ckpt"))
            else:
                worker.clear()
                classify(spec, key, attempt, "error", payload["error"],
                         payload["message"], payload.get("traceback", ""),
                         payload.get("duration", 0.0), pid)

        def try_preempt_worker(worker: _PoolWorker) -> bool:
            """Checkpoint-first alternative to the watchdog kill."""
            if preempt.checkpoint_from_env() is None:
                return False
            payload = preempt.try_preempt(worker.proc, worker.conn)
            if payload is None:
                return False
            reap(worker, payload)
            return True

        try:
            while queue or any(w.busy for w in self._workers):
                if supervisor is not None and supervisor.interrupted:
                    self._kill_busy()
                    raise SweepInterrupted()
                if aborted:
                    self._kill_busy()
                    queue.clear()
                    break
                if queue:
                    # Workers lost to crashes/timeouts are replaced while
                    # work remains; an empty pool aborts to serial.
                    self._replenish()
                now = time.monotonic()
                for worker in [w for w in self._workers if not w.busy]:
                    index = next((i for i, (_, _, nb) in enumerate(queue)
                                  if nb <= now), None)
                    if index is None:
                        break
                    spec, attempt, _ = queue.pop(index)
                    if not dispatch(worker, spec, attempt):
                        # worker died at send time: put the task back and
                        # let the next iteration replenish the pool
                        queue.append((spec, attempt, now))
                busy = [w for w in self._workers if w.busy]
                if not busy:
                    if queue:   # everything is backing off
                        next_at = min(nb for _, _, nb in queue)
                        time.sleep(min(0.25, max(0.0, next_at - now)))
                    continue
                wait_for = self.poll_interval
                deadlines = [w.deadline for w in busy
                             if w.deadline is not None]
                if deadlines:
                    wait_for = min(wait_for,
                                   max(0.0, min(deadlines) - now))
                ready = mp_wait([w.conn for w in busy], timeout=wait_for)
                ready_set = set(ready)
                for worker in [w for w in busy if w.conn in ready_set]:
                    reap(worker)
                now = time.monotonic()
                for worker in [w for w in busy
                               if w.busy and w.deadline is not None
                               and now > w.deadline]:
                    # Checkpoint-first: a preempted point resumes from
                    # its save-state instead of repeating all its work.
                    if try_preempt_worker(worker):
                        continue
                    spec, key, attempt = (worker.spec, worker.key,
                                          worker.attempt)
                    started, deadline = worker.started, worker.deadline
                    pid = worker.proc.pid
                    self._discard(worker)   # the watchdog kill
                    assert spec is not None and deadline is not None
                    classify(spec, key, attempt, "timeout", TIMEOUT_ERROR,
                             f"point exceeded its "
                             f"{deadline - started:.0f}s deadline",
                             "", now - started, pid)
                if guards.enabled and now >= guard_next:
                    guard_next = now + 1.0
                    ckpt_cfg = preempt.checkpoint_from_env()
                    disk_path = ckpt_cfg.dir if ckpt_cfg is not None else "."
                    for worker in [w for w in self._workers if w.busy]:
                        breach = preempt.guard_breach(
                            guards, worker.proc.pid, disk_path)
                        if breach is None:
                            continue
                        spec, key, attempt = (worker.spec, worker.key,
                                              worker.attempt)
                        started, pid = worker.started, worker.proc.pid
                        assert spec is not None
                        if supervisor is not None:
                            supervisor.record_incident(
                                "guard", spec, reason=breach, worker=pid)
                        if try_preempt_worker(worker):
                            continue
                        self._discard(worker)
                        classify(spec, key, attempt, "preempted",
                                 PREEMPT_ERROR, breach, "",
                                 now - started, pid)
        except BaseException:
            self._kill_busy()
            raise


# ----------------------------------------------------------------------
# Process-wide shared pool (the amortization carrier)
# ----------------------------------------------------------------------
_SHARED: Optional[PersistentPool] = None
_ATEXIT_REGISTERED = False


def _register_atexit() -> None:
    # SS601: parent-side pool lifecycle.  Workers never start a nested
    # pool (flow reaches here only through an over-approximate
    # name-fallback edge on `.run`), and the write is an idempotent
    # once-only latch even if they did.
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        _ATEXIT_REGISTERED = True  # simsan: skip=SS601
        atexit.register(shutdown_shared_pool)


def shared_pool(n_workers: int) -> PersistentPool:
    """The process-wide warm pool, resized (by restart) on demand.

    A size change tears the old pool down first — warm workers are only
    reusable at the width they were forked for.
    """
    global _SHARED
    if _SHARED is not None and _SHARED.n_workers != n_workers:
        _SHARED.shutdown()
        _SHARED = None
    if _SHARED is None:
        _SHARED = PersistentPool(n_workers)
    return _SHARED


def shutdown_shared_pool() -> None:
    """Stop the shared pool's workers (idempotent; atexit-registered)."""
    # SS601: parent-side teardown; clearing the handle is idempotent
    # and a worker process has no shared pool to clear.
    global _SHARED
    if _SHARED is not None:
        _SHARED.shutdown()
        _SHARED = None  # simsan: skip=SS601
