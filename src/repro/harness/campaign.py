"""Declarative evaluation campaigns: the paper's full grid as data.

A *campaign* is a versioned spec file (JSON, or TOML on Python >= 3.11)
under ``benchmarks/campaigns/`` describing the mix x cores x policy
grids behind the paper's figures.  ``python -m repro campaign`` expands
it into :class:`~repro.harness.spec.ExperimentSpec` points, executes
them as one standing resumable mega-sweep on the existing manifest +
result-store + warm-pool machinery, and renders the figure/table
reproduction (speedup-over-LRU geomeans, MPKI deltas, PMC breakdowns)
per grid through the :mod:`repro.obs.report` aggregator.

Spec format (all keys lowercase; ``defaults`` apply to every grid)::

    {
      "schema": "repro.campaign/v1",
      "name": "care-paper",
      "description": "...",
      "defaults": {"records": 6000, "seed": 3, "preset": "default"},
      "grids": [
        {"id": "fig07", "figure": "Fig. 7", "title": "...",
         "suite": "spec", "workloads": "@spec",
         "policies": ["lru", "care"], "cores": [4], "prefetch": [true]},
        {"id": "fig10", "figure": "Fig. 10", "suite": "mix",
         "mixes": 100, "policies": ["lru", "care"], "cores": [4]}
      ],
      "slices": {
        "ci-smoke": {"grids": ["fig07"], "max_workloads": 2,
                     "records": 300, "policies": ["lru", "care"]}
      }
    }

Workload selectors: ``@spec`` (all 30 Table VIII benchmarks),
``@spec-fig5`` (the 16 Figure 5 workloads), ``@gap`` (Table IX),
``@serve`` (production-traffic families), ``@serve-<family>`` (one
family), or an explicit name list.  A *slice* is a named shrink of the
same campaign: it restricts which grids run and caps/overrides their
axes (``max_workloads``/``max_mixes`` take evenly strided samples so a
slice keeps the full diversity spread), which is how the gating CI
smoke slice and the nightly slice stay honest subsets of the committed
paper-scale grid.

Expansion is deterministic, so the same spec + slice always produces
the same point set in the same order; the sweep manifest keys points by
spec content hash, which is what makes interrupted campaigns resumable
(``--resume``) across processes and nights.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from .spec import CONFIG_PRESETS, ExperimentSpec

#: accepted campaign schema tag (bump on incompatible format changes)
CAMPAIGN_SCHEMA = "repro.campaign/v1"

#: where named campaigns live, relative to the repo root / cwd
CAMPAIGNS_DIR = Path("benchmarks") / "campaigns"

#: the campaign used when the CLI gets no spec argument
DEFAULT_CAMPAIGN = "care-paper"

_GRID_KEYS = {"id", "title", "figure", "suite", "workloads", "policies",
              "cores", "prefetch", "records", "seed", "preset", "mixes"}
_SLICE_KEYS = {"grids", "max_workloads", "max_mixes", "records", "cores",
               "policies", "prefetch", "workers"}


class CampaignError(ValueError):
    """A campaign file failed validation (CLI maps this to exit 2)."""


def _strided_sample(seq: Sequence, count: int) -> List:
    """Evenly strided subset preserving order (diversity over prefix)."""
    if count >= len(seq):
        return list(seq)
    if count < 1:
        return []
    step = len(seq) / count
    picked = []
    for i in range(count):
        item = seq[int(i * step)]
        if item not in picked:
            picked.append(item)
    return picked


def resolve_workloads(selector: Union[str, Sequence[str]]) -> List[str]:
    """Expand a workload selector (``@spec``/``@gap``/... or a list)."""
    from ..workloads import (FIG5_WORKLOADS, SERVE_FAMILIES, SERVE_WORKLOADS,
                             gap_workload_names, serve_names, spec_names)
    if isinstance(selector, str):
        if selector == "@spec":
            return spec_names()
        if selector == "@spec-fig5":
            return list(FIG5_WORKLOADS)
        if selector == "@gap":
            return gap_workload_names()
        if selector == "@serve":
            return serve_names()
        if selector.startswith("@serve-"):
            family = selector[len("@serve-"):]
            if family not in SERVE_FAMILIES:
                raise CampaignError(
                    f"unknown serving family {family!r} in {selector!r}; "
                    f"families: {list(SERVE_FAMILIES)}")
            return [n for n, w in SERVE_WORKLOADS.items()
                    if w.family == family]
        raise CampaignError(
            f"unknown workload selector {selector!r} (want @spec, "
            "@spec-fig5, @gap, @serve, @serve-<family>, or a name list)")
    names = list(selector)
    if not names:
        raise CampaignError("workload list must not be empty")
    return names


@dataclass(frozen=True)
class CampaignGrid:
    """One figure/table grid: the cross product of its axes."""

    id: str
    suite: str                         # "spec" | "gap" | "serve" | "mix"
    policies: Tuple[str, ...]
    cores: Tuple[int, ...]
    prefetch: Tuple[bool, ...] = (True,)
    workloads: Tuple[str, ...] = ()    # empty iff suite == "mix"
    mixes: int = 0                     # mix count iff suite == "mix"
    records: int = 6000
    seed: int = 3
    preset: str = "default"
    title: str = ""
    figure: str = ""

    def points(self) -> int:
        per_workload = len(self.policies) * len(self.cores) * len(self.prefetch)
        n = self.mixes if self.suite == "mix" else len(self.workloads)
        return n * per_workload

    def expand(self) -> List[ExperimentSpec]:
        """Every ExperimentSpec in this grid, deterministic order."""
        specs: List[ExperimentSpec] = []
        for cores in self.cores:
            for prefetch in self.prefetch:
                if self.suite == "mix":
                    for mix_id in range(self.mixes):
                        for policy in self.policies:
                            specs.append(ExperimentSpec.mix(
                                mix_id, policy, n_cores=cores,
                                prefetch=prefetch, n_records=self.records,
                                seed=self.seed))
                else:
                    for workload in self.workloads:
                        for policy in self.policies:
                            specs.append(ExperimentSpec(
                                workload=workload, policy=policy,
                                n_cores=cores, prefetch=prefetch,
                                suite=self.suite, n_records=self.records,
                                seed=self.seed, preset=self.preset))
        return specs


@dataclass(frozen=True)
class Campaign:
    """A parsed campaign file (possibly already sliced)."""

    name: str
    description: str = ""
    grids: Tuple[CampaignGrid, ...] = ()
    slices: Mapping[str, Dict[str, Any]] = field(default_factory=dict)
    baseline: str = "lru"
    slice_name: Optional[str] = None
    source: Optional[str] = None       # file it was loaded from

    def tag(self) -> str:
        """Manifest/incident tag: campaign name plus the active slice."""
        return (f"campaign-{self.name}-{self.slice_name}" if self.slice_name
                else f"campaign-{self.name}")

    def default_manifest(self) -> str:
        return f"{self.tag()}.manifest.json"

    def points(self) -> int:
        return sum(grid.points() for grid in self.grids)

    def expand(self) -> List[Tuple[CampaignGrid, ExperimentSpec]]:
        return [(grid, spec) for grid in self.grids
                for spec in grid.expand()]

    def specs(self) -> List[ExperimentSpec]:
        """All points, deduplicated (grids may overlap), stable order."""
        seen = set()
        out: List[ExperimentSpec] = []
        for _, spec in self.expand():
            key = spec.key()
            if key not in seen:
                seen.add(key)
                out.append(spec)
        return out


# ----------------------------------------------------------------------
# Parsing / validation
# ----------------------------------------------------------------------
def _as_tuple(value, kind=None) -> Tuple:
    items = tuple(value if isinstance(value, (list, tuple)) else (value,))
    if kind is not None:
        items = tuple(kind(v) for v in items)
    return items


def _parse_grid(raw: Dict[str, Any], defaults: Dict[str, Any]) -> CampaignGrid:
    if not isinstance(raw, dict):
        raise CampaignError(f"grid entries must be objects, got {raw!r}")
    unknown = set(raw) - _GRID_KEYS
    if unknown:
        raise CampaignError(
            f"grid {raw.get('id', '?')!r}: unknown keys {sorted(unknown)}")
    for key in ("id", "suite", "policies", "cores"):
        if key not in raw:
            raise CampaignError(f"grid {raw.get('id', '?')!r}: "
                                f"missing required key {key!r}")
    suite = raw["suite"]
    if suite not in ("spec", "gap", "serve", "mix"):
        raise CampaignError(f"grid {raw['id']!r}: unknown suite {suite!r}")
    preset = raw.get("preset", defaults.get("preset", "default"))
    if preset not in CONFIG_PRESETS:
        raise CampaignError(f"grid {raw['id']!r}: unknown preset {preset!r}")
    workloads: Tuple[str, ...] = ()
    mixes = 0
    if suite == "mix":
        mixes = int(raw.get("mixes", defaults.get("mixes", 0)))
        if mixes < 1:
            raise CampaignError(f"grid {raw['id']!r}: mix grids need "
                                "'mixes' >= 1")
    else:
        if "workloads" not in raw:
            raise CampaignError(f"grid {raw['id']!r}: non-mix grids need "
                                "'workloads'")
        workloads = tuple(resolve_workloads(raw["workloads"]))
    return CampaignGrid(
        id=str(raw["id"]),
        suite=suite,
        policies=_as_tuple(raw["policies"], str),
        cores=_as_tuple(raw["cores"], int),
        prefetch=_as_tuple(raw.get("prefetch", (True,)), bool),
        workloads=workloads,
        mixes=mixes,
        records=int(raw.get("records", defaults.get("records", 6000))),
        seed=int(raw.get("seed", defaults.get("seed", 3))),
        preset=preset,
        title=str(raw.get("title", "")),
        figure=str(raw.get("figure", "")),
    )


def parse_campaign(data: Dict[str, Any],
                   source: Optional[str] = None) -> Campaign:
    """Validate a raw campaign dict into a :class:`Campaign`."""
    if not isinstance(data, dict):
        raise CampaignError("campaign file must hold a JSON/TOML object")
    schema = data.get("schema")
    if schema != CAMPAIGN_SCHEMA:
        raise CampaignError(f"unsupported campaign schema {schema!r} "
                            f"(want {CAMPAIGN_SCHEMA!r})")
    name = data.get("name")
    if not name or not isinstance(name, str):
        raise CampaignError("campaign needs a non-empty 'name'")
    defaults = data.get("defaults", {})
    raw_grids = data.get("grids")
    if not raw_grids:
        raise CampaignError("campaign needs at least one grid")
    grids = tuple(_parse_grid(g, defaults) for g in raw_grids)
    ids = [g.id for g in grids]
    if len(set(ids)) != len(ids):
        raise CampaignError(f"duplicate grid ids: {ids}")
    slices = data.get("slices", {})
    for sname, sdata in slices.items():
        unknown = set(sdata) - _SLICE_KEYS
        if unknown:
            raise CampaignError(
                f"slice {sname!r}: unknown keys {sorted(unknown)}")
        for gid in sdata.get("grids", []):
            if gid not in ids:
                raise CampaignError(
                    f"slice {sname!r} references unknown grid {gid!r}")
    return Campaign(name=name, description=str(data.get("description", "")),
                    grids=grids, slices=dict(slices),
                    baseline=str(defaults.get("baseline", "lru")),
                    source=source)


def load_campaign(path: Union[str, Path]) -> Campaign:
    """Load and validate one campaign file (``.json``, or ``.toml`` when
    the interpreter ships :mod:`tomllib` — Python 3.11+)."""
    path = Path(path)
    try:
        raw_bytes = path.read_bytes()
    except OSError as exc:
        raise CampaignError(f"cannot read campaign file {path}: {exc}")
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:
            raise CampaignError(
                f"{path}: TOML campaigns need Python >= 3.11 (tomllib); "
                "use the JSON form on older interpreters")
        try:
            data = tomllib.loads(raw_bytes.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise CampaignError(f"{path}: invalid TOML: {exc}")
    else:
        try:
            data = json.loads(raw_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CampaignError(f"{path}: invalid JSON: {exc}")
    return parse_campaign(data, source=str(path))


def find_campaign(ref: Optional[str]) -> Path:
    """Resolve a CLI campaign reference: a path, or a name under
    ``benchmarks/campaigns/`` (``.json`` preferred, then ``.toml``)."""
    ref = ref or DEFAULT_CAMPAIGN
    as_path = Path(ref)
    if as_path.suffix in (".json", ".toml") or as_path.is_file():
        return as_path
    for suffix in (".json", ".toml"):
        candidate = CAMPAIGNS_DIR / f"{ref}{suffix}"
        if candidate.is_file():
            return candidate
    raise CampaignError(
        f"no campaign named {ref!r} under {CAMPAIGNS_DIR}/ "
        f"(and {ref!r} is not a file)")


def available_campaigns() -> List[Path]:
    """Campaign files under ``benchmarks/campaigns/``, sorted."""
    if not CAMPAIGNS_DIR.is_dir():
        return []
    return sorted(p for p in CAMPAIGNS_DIR.iterdir()
                  if p.suffix in (".json", ".toml"))


# ----------------------------------------------------------------------
# Slicing
# ----------------------------------------------------------------------
def apply_slice(campaign: Campaign, slice_name: str) -> Campaign:
    """The campaign restricted to a named slice (see module doc)."""
    if slice_name not in campaign.slices:
        raise CampaignError(
            f"campaign {campaign.name!r} has no slice {slice_name!r}; "
            f"available: {sorted(campaign.slices)}")
    sdata = campaign.slices[slice_name]
    keep = sdata.get("grids")
    grids: List[CampaignGrid] = []
    for grid in campaign.grids:
        if keep is not None and grid.id not in keep:
            continue
        changes: Dict[str, Any] = {}
        if "records" in sdata:
            changes["records"] = int(sdata["records"])
        if "policies" in sdata:
            policies = tuple(p for p in grid.policies
                             if p in set(sdata["policies"]))
            changes["policies"] = policies or _as_tuple(
                sdata["policies"], str)
        if "cores" in sdata:
            cores = tuple(c for c in grid.cores
                          if c in set(sdata["cores"]))
            changes["cores"] = cores or _as_tuple(sdata["cores"], int)
        if "prefetch" in sdata:
            changes["prefetch"] = _as_tuple(sdata["prefetch"], bool)
        if "max_workloads" in sdata and grid.suite != "mix":
            changes["workloads"] = tuple(_strided_sample(
                grid.workloads, int(sdata["max_workloads"])))
        if "max_mixes" in sdata and grid.suite == "mix":
            changes["mixes"] = min(grid.mixes, int(sdata["max_mixes"]))
        grids.append(replace(grid, **changes))
    if not grids:
        raise CampaignError(f"slice {slice_name!r} selects no grids")
    return replace(campaign, grids=tuple(grids), slice_name=slice_name)


# ----------------------------------------------------------------------
# Status / reporting
# ----------------------------------------------------------------------
def campaign_status(campaign: Campaign, store,
                    manifest_counts: Optional[Dict[str, int]] = None
                    ) -> Dict[str, Any]:
    """Coverage of the campaign against a result store (+ manifest)."""
    grids = []
    total = done = 0
    for grid in campaign.grids:
        specs = grid.expand()
        have = sum(1 for s in specs
                   if store is not None and store.get(s) is not None)
        grids.append({
            "id": grid.id, "figure": grid.figure, "title": grid.title,
            "points": len(specs), "done": have,
            "coverage": round(have / len(specs), 4) if specs else 1.0,
        })
        total += len(specs)
        done += have
    out = {
        "campaign": campaign.name,
        "slice": campaign.slice_name,
        "points": total,
        "done": done,
        "coverage": round(done / total, 4) if total else 1.0,
        "grids": grids,
    }
    if manifest_counts is not None:
        out["manifest"] = manifest_counts
    return out


def format_status(status: Dict[str, Any]) -> str:
    lines = [f"campaign {status['campaign']}"
             + (f" · slice {status['slice']}" if status["slice"] else "")
             + f": {status['done']}/{status['points']} point(s) in store "
             f"({100 * status['coverage']:.1f}%)"]
    for grid in status["grids"]:
        fig = f" [{grid['figure']}]" if grid["figure"] else ""
        lines.append(f"  {grid['id']:12s}{fig} "
                     f"{grid['done']:5d}/{grid['points']:<5d} "
                     f"({100 * grid['coverage']:.1f}%)")
    if "manifest" in status:
        counts = status["manifest"]
        lines.append("  manifest: " + ", ".join(
            f"{counts.get(k, 0)} {k}" for k in ("done", "failed", "pending")))
    return "\n".join(lines)


def build_campaign_report(campaign: Campaign, store,
                          baseline: Optional[str] = None) -> Dict[str, Any]:
    """Per-grid figure/table reproduction from stored results.

    Each grid becomes one entry carrying its coverage plus the standard
    :func:`repro.obs.report.build_report` payload over the grid's
    available points, so every figure renders with the same speedup /
    MPKI / PMC tables the plain ``repro report`` uses.
    """
    from ..obs.report import build_report
    baseline = baseline or campaign.baseline
    grids = []
    for grid in campaign.grids:
        specs = grid.expand()
        entries = []
        for spec in specs:
            result = store.get(spec) if store is not None else None
            if result is not None:
                entries.append((spec, result))
        grids.append({
            "id": grid.id, "figure": grid.figure, "title": grid.title,
            "suite": grid.suite, "points": len(specs),
            "done": len(entries),
            "coverage": (round(len(entries) / len(specs), 4)
                         if specs else 1.0),
            "report": build_report(entries, baseline=baseline),
        })
    return {
        "schema": "repro.campaign.report/v1",
        "campaign": campaign.name,
        "slice": campaign.slice_name,
        "baseline": baseline,
        "grids": grids,
    }


def render_campaign_markdown(report: Dict[str, Any]) -> str:
    """Markdown for humans and ``$GITHUB_STEP_SUMMARY``."""
    from ..obs.report import render_markdown
    head = f"# Campaign report · {report['campaign']}"
    if report["slice"]:
        head += f" · slice `{report['slice']}`"
    lines = [head, ""]
    lines.append("| grid | figure | points | done | coverage |")
    lines.append("|---|---|---:|---:|---:|")
    for grid in report["grids"]:
        lines.append(f"| {grid['id']} | {grid['figure'] or '-'} | "
                     f"{grid['points']} | {grid['done']} | "
                     f"{100 * grid['coverage']:.1f}% |")
    for grid in report["grids"]:
        lines.append("")
        title = grid["title"] or grid["id"]
        fig = f" ({grid['figure']})" if grid["figure"] else ""
        lines.append(f"# {grid['id']}{fig} — {title}")
        if grid["done"] == 0:
            lines.append("")
            lines.append("_No stored results yet — run the campaign "
                         "(or this slice) first._")
            continue
        body = render_markdown(grid["report"])
        # Drop the inner report's H1 and demote its headings one level
        # so the campaign document keeps a single outline.
        inner = body.splitlines()[1:]
        lines.extend("#" + ln if ln.startswith("#") else ln
                     for ln in inner)
    return "\n".join(lines).rstrip("\n") + "\n"


def iter_failed_keys(manifest) -> Iterable[str]:
    """Spec keys the manifest records as permanently failed."""
    return manifest.keys_with_status("failed")
