"""Fault-tolerant sweep supervision: retries, timeouts, checkpoints.

The paper's campaigns are large — dozens of policies x workloads x core
counts — and a multi-hour sweep must survive worker crashes, hangs, OOM
kills, and dirty shutdowns instead of dying on the first bad point.
This module supplies the machinery the runner builds on:

* :class:`FailedResult` — a failing point becomes a recorded value
  (exception type, message, traceback tail, attempt count) instead of an
  escaped exception that kills the pool.
* :class:`RetryPolicy` — transient failures (``OSError`` family, broken
  pools, killed workers, watchdog timeouts) are retried with exponential
  backoff and deterministic per-point jitter; permanent failures are
  classified immediately.
* :class:`SupervisedPool` — a process-per-task worker pool whose
  supervisor enforces a wall-clock deadline per point (see
  :func:`compute_timeout`), kills hung workers, detects crashed ones by
  exit code, and requeues transient casualties.
* :class:`SweepManifest` — a checkpoint file (atomic rename, like the
  result store) tracking done/failed/pending point keys, so
  ``python -m repro sweep --resume`` continues a killed campaign.
* :class:`SweepSupervisor` / :func:`supervised_sweep` — the process-wide
  context the CLI installs around a sweep: failure collection across
  every ``run_many`` call, SIGINT/SIGTERM handlers that flush the
  manifest before exit, and incident logging through ``repro.obs``.

Chaos (``REPRO_CHAOS``, :mod:`repro.checks.chaos`) injects worker
raises/hangs/kills and store corruption against exactly this layer; the
fault-injection suite in ``tests/test_chaos.py`` proves a chaotic sweep
converges to the byte-identical fault-free result set.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..sim.stats import SimResult
from . import preempt
from .preempt import PREEMPT_ERROR
from .spec import ExperimentSpec

log = logging.getLogger(__name__)

#: synthetic error names minted by the supervisor itself
CRASH_ERROR = "WorkerCrash"
TIMEOUT_ERROR = "WorkerTimeout"

#: exception type names the retry layer treats as transient.  The OSError
#: family covers full disks, dropped pipes, and sandbox refusals; the
#: synthetic names cover watchdog kills and dead workers (OOM stand-ins);
#: BrokenProcessPool is kept for payloads from legacy executors.
#: Preemption is transient by construction: the requeued attempt resumes
#: from the save-state (or cold-restarts if the save failed).
TRANSIENT_ERROR_NAMES = frozenset({
    "OSError", "IOError", "EnvironmentError", "InterruptedError",
    "BlockingIOError", "BrokenPipeError", "ConnectionError",
    "ConnectionAbortedError", "ConnectionRefusedError",
    "ConnectionResetError", "TimeoutError", "MemoryError",
    "BrokenProcessPool", CRASH_ERROR, TIMEOUT_ERROR,
    PREEMPT_ERROR, "PreemptedError",
})

#: default per-point deadline: a generous base plus work-proportional
#: slack (records x cores at a floor throughput no healthy point is
#: slower than).  Override per sweep with ``REPRO_TIMEOUT`` seconds
#: (<= 0 disables the watchdog entirely).
TIMEOUT_ENV = "REPRO_TIMEOUT"
DEFAULT_TIMEOUT_BASE = 120.0
DEFAULT_TIMEOUT_FLOOR_RATE = 25.0   # records*cores per second, worst case

RETRIES_ENV = "REPRO_RETRIES"


# ----------------------------------------------------------------------
# Failure values
# ----------------------------------------------------------------------
@dataclass
class FailedResult:
    """What the sweep records for a point that could not be simulated."""

    spec: ExperimentSpec
    kind: str                 # "error" | "timeout" | "crash" | "preempted"
    error: str                # exception type name (or synthetic)
    message: str
    traceback: str = ""
    attempts: int = 1
    duration: float = 0.0     # wall-clock of the last attempt
    permanent: bool = True

    @property
    def key(self) -> str:
        return self.spec.key()

    @property
    def label(self) -> str:
        return self.spec.label()

    def summary(self) -> str:
        return (f"{self.label}: {self.error}: {self.message} "
                f"({self.kind}, {self.attempts} attempt(s))")

    def to_dict(self) -> Dict[str, Any]:
        return {"spec": self.spec.to_dict(), "kind": self.kind,
                "error": self.error, "message": self.message,
                "traceback": self.traceback, "attempts": self.attempts,
                "duration": round(self.duration, 3),
                "permanent": self.permanent}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailedResult":
        return cls(spec=ExperimentSpec.from_dict(data["spec"]),
                   kind=data["kind"], error=data["error"],
                   message=data["message"],
                   traceback=data.get("traceback", ""),
                   attempts=data.get("attempts", 1),
                   duration=data.get("duration", 0.0),
                   permanent=data.get("permanent", True))

    @classmethod
    def from_exception(cls, spec: ExperimentSpec, exc: BaseException,
                       attempts: int, duration: float,
                       permanent: bool) -> "FailedResult":
        import traceback as tb_mod
        tail = "".join(tb_mod.format_exception(
            type(exc), exc, exc.__traceback__))[-4000:]
        return cls(spec=spec, kind="error", error=type(exc).__name__,
                   message=str(exc), traceback=tail, attempts=attempts,
                   duration=duration, permanent=permanent)


class SweepFailedError(RuntimeError):
    """Raised after a sweep finished its healthy points but some failed.

    ``results`` maps every successfully resolved spec to its result —
    callers that can tolerate holes may consume it; the CLI renders
    ``failures`` as the failure table and exits nonzero.
    """

    def __init__(self, failures: Sequence[FailedResult],
                 results: Optional[Dict[ExperimentSpec, SimResult]] = None):
        self.failures = list(failures)
        self.results = dict(results or {})
        first = self.failures[0].summary() if self.failures else "?"
        super().__init__(
            f"{len(self.failures)} sweep point(s) failed (first: {first})")


class SweepInterrupted(RuntimeError):
    """SIGINT/SIGTERM stopped the sweep; partial state was checkpointed."""

    def __init__(self, manifest_path: Optional[Path] = None,
                 done: int = 0, pending: int = 0):
        self.manifest_path = manifest_path
        where = f"; manifest at {manifest_path}" if manifest_path else ""
        super().__init__(
            f"sweep interrupted with {done} point(s) done, "
            f"{pending} pending{where}")


class PoolUnavailable(Exception):
    """The supervised worker pool could not start or died mid-sweep."""

    def __init__(self, reason: BaseException) -> None:
        super().__init__(str(reason))
        self.reason = reason


# ----------------------------------------------------------------------
# Retry / timeout policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are retried: cap, backoff, jitter."""

    max_attempts: int = 3
    backoff: float = 0.25      # seconds before the first retry
    backoff_cap: float = 8.0   # exponential growth saturates here
    jitter: float = 0.5        # fraction of the delay added as jitter

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def is_transient_name(self, error_name: str) -> bool:
        return error_name in TRANSIENT_ERROR_NAMES

    def is_transient(self, exc: BaseException) -> bool:
        if isinstance(exc, (OSError, ConnectionError, MemoryError)):
            return True
        return self.is_transient_name(type(exc).__name__)

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt + 1`` for point ``key``.

        Jitter is derived from a hash of ``(key, attempt)`` — not the
        process RNG — so sweeps stay deterministic and two workers
        retrying simultaneously still decorrelate.
        """
        base = min(self.backoff_cap, self.backoff * (2.0 ** attempt))
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * unit)

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None) -> "RetryPolicy":
        """Policy with ``REPRO_RETRIES`` (attempt cap) applied, if set."""
        e: Dict[str, str] = dict(os.environ) if env is None else env
        raw = e.get(RETRIES_ENV, "").strip()
        if raw:
            try:
                return cls(max_attempts=max(1, int(raw)))
            except ValueError:
                log.warning("ignoring non-integer %s=%r", RETRIES_ENV, raw)
        return cls()


def compute_timeout(spec: ExperimentSpec,
                    override: Optional[float] = None) -> Optional[float]:
    """Wall-clock deadline (seconds) for one point, or ``None`` (off).

    Precedence: explicit ``override`` > ``REPRO_TIMEOUT`` > the default
    scale-proportional deadline.  Values <= 0 disable the watchdog.
    """
    if override is not None:
        return override if override > 0 else None
    raw = os.environ.get(TIMEOUT_ENV, "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            log.warning("ignoring non-numeric %s=%r", TIMEOUT_ENV, raw)
        else:
            return value if value > 0 else None
    return (DEFAULT_TIMEOUT_BASE +
            spec.cost_units() / DEFAULT_TIMEOUT_FLOOR_RATE)


# ----------------------------------------------------------------------
# Sweep manifest (checkpoint / resume)
# ----------------------------------------------------------------------
STATUS_PENDING = "pending"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

MANIFEST_VERSION = 1
DEFAULT_MANIFEST = "sweep.manifest.json"

#: consecutive manifest-persist failures tolerated before the sweep aborts
MANIFEST_STRIKES = 3


class ManifestPersistError(RuntimeError):
    """The manifest failed to persist ``MANIFEST_STRIKES`` times in a row.

    One failed write is only a warning (a full disk may recover), but a
    sweep whose ledger cannot be written would silently lose resumability
    — the CLI turns this into exit code 3.
    """

    def __init__(self, path: Path, strikes: int,
                 last_error: BaseException) -> None:
        super().__init__(
            f"manifest at {path} failed to persist {strikes} times in a "
            f"row (last: {last_error}); aborting so the sweep cannot "
            f"silently lose its ledger")
        self.path = path
        self.strikes = strikes


class SweepManifest:
    """Checkpoint ledger for one campaign: done/failed/pending points.

    Results themselves live in the content-addressed store; the manifest
    only tracks *status*, so resuming is "serve done points from the
    store, re-run the rest".  Writes are atomic (tempfile + rename) and
    cheap (a few KB), so the runner checkpoints after every completion.
    """

    def __init__(self, path: Union[str, Path], sweep: str = "",
                 meta: Optional[Dict[str, Any]] = None,
                 persist: bool = True) -> None:
        self.path = Path(path)
        self.sweep = sweep
        self.meta = dict(meta or {})
        self.points: Dict[str, Dict[str, Any]] = {}
        #: False = keep in memory only, write on interrupt/failure flush
        self.persist = persist
        self._strikes = 0   # consecutive checkpoint() failures

    # -- bookkeeping ----------------------------------------------------
    def register(self, spec: ExperimentSpec) -> str:
        """Track ``spec``; an existing entry keeps its status."""
        key = spec.key()
        if key not in self.points:
            self.points[key] = {"spec": spec.to_dict(),
                                "label": spec.label(),
                                "status": STATUS_PENDING,
                                "attempts": 0, "error": None}
        return key

    def _entry(self, spec: ExperimentSpec) -> Dict[str, Any]:
        return self.points[self.register(spec)]

    def mark_done(self, spec: ExperimentSpec) -> None:
        entry = self._entry(spec)
        entry["status"] = STATUS_DONE
        entry["error"] = None

    def mark_failed(self, failure: FailedResult) -> None:
        entry = self._entry(failure.spec)
        entry["status"] = STATUS_FAILED
        entry["attempts"] = failure.attempts
        entry["error"] = {"kind": failure.kind, "error": failure.error,
                          "message": failure.message,
                          "permanent": failure.permanent}

    def mark_preempted(self, spec: ExperimentSpec,
                       ckpt_path: Optional[str]) -> None:
        """Record checkpoint lineage: the point was preempted and its
        requeued attempt will resume from ``ckpt_path`` (``None`` means
        the save failed and the retry cold-restarts)."""
        entry = self._entry(spec)
        entry["preempts"] = entry.get("preempts", 0) + 1
        entry["ckpt"] = ckpt_path
        self.checkpoint()

    def reset_failures(self) -> int:
        """Failed -> pending (a ``--resume`` gives them a fresh start)."""
        reset = 0
        for entry in self.points.values():
            if entry["status"] == STATUS_FAILED:
                entry["status"] = STATUS_PENDING
                entry["error"] = None
                reset += 1
        return reset

    def counts(self) -> Dict[str, int]:
        out = {STATUS_PENDING: 0, STATUS_DONE: 0, STATUS_FAILED: 0}
        for entry in self.points.values():
            out[entry["status"]] = out.get(entry["status"], 0) + 1
        return out

    def keys_with_status(self, status: str) -> List[str]:
        return [k for k, e in self.points.items() if e["status"] == status]

    def summary(self) -> str:
        c = self.counts()
        return (f"{len(self.points)} point(s): {c[STATUS_DONE]} done, "
                f"{c[STATUS_FAILED]} failed, {c[STATUS_PENDING]} pending")

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"version": MANIFEST_VERSION, "sweep": self.sweep,
                "meta": dict(self.meta), "points": self.points}

    def save(self) -> Path:
        """Atomic write (tempfile + rename), mirroring the result store."""
        payload = json.dumps(self.to_dict(), sort_keys=True, indent=1)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return self.path

    def checkpoint(self) -> None:
        """Persist if this manifest is file-backed.

        A single failed write is tolerated (warning), but
        ``MANIFEST_STRIKES`` consecutive failures raise
        :class:`ManifestPersistError` — a campaign without a ledger
        cannot resume, so limping on would be silent data loss.
        """
        if not self.persist:
            return
        try:
            self.save()
        except OSError as exc:
            self._strikes += 1
            log.warning("manifest checkpoint failed (%d/%d): %s",
                        self._strikes, MANIFEST_STRIKES, exc)
            if self._strikes >= MANIFEST_STRIKES:
                raise ManifestPersistError(self.path, self._strikes,
                                           exc) from exc
            return
        self._strikes = 0

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepManifest":
        data = json.loads(Path(path).read_text())
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {data.get('version')!r} "
                f"in {path}")
        manifest = cls(path, sweep=data.get("sweep", ""),
                       meta=data.get("meta", {}))
        manifest.points = dict(data.get("points", {}))
        return manifest


def fsck_manifests(paths: Sequence[Union[str, Path]]) -> Any:
    """Validate sweep/campaign manifest files; quarantine corrupt ones.

    A truncated or hand-mangled manifest would crash ``--resume``, so
    ``store fsck`` covers the ledgers too: every file must parse, carry
    a supported version, and hold entries whose spec round-trips to its
    key with a known status.  Bad files move aside (``quarantine/``
    beside the manifest, numbered-suffix on collision — the store's
    idiom) and the next sweep starts a fresh ledger; done points still
    come from the result store.  Returns a
    :class:`repro.harness.store.FsckReport`.
    """
    from .store import FsckReport
    statuses = (STATUS_PENDING, STATUS_DONE, STATUS_FAILED)
    report = FsckReport()
    for raw in paths:
        path = Path(raw)
        if not path.is_file():
            continue
        report.scanned += 1
        try:
            manifest = SweepManifest.load(path)
            for key, entry in manifest.points.items():
                spec = ExperimentSpec.from_dict(entry["spec"])
                if spec.key() != key:
                    raise ValueError(
                        f"entry {key[:12]} does not match its spec")
                if entry["status"] not in statuses:
                    raise ValueError(
                        f"entry {key[:12]} has unknown status "
                        f"{entry['status']!r}")
        except (OSError, KeyError, TypeError, ValueError) as exc:
            report.errors.append(f"{path.name}: {exc}")
            moved = _quarantine_manifest(path)
            if moved is not None:
                report.quarantined.append(str(moved))
            continue
        report.ok += 1
    return report


def _quarantine_manifest(path: Path) -> Optional[Path]:
    """Move a corrupt manifest aside (never raises, like the store)."""
    try:
        qdir = path.parent / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = qdir / f"{path.name}.{suffix}"
        os.replace(path, target)
    except OSError as exc:
        log.warning("could not quarantine manifest %s: %s", path, exc)
        return None
    log.warning("quarantined corrupt manifest %s", path.name)
    return target


# ----------------------------------------------------------------------
# The process-wide sweep supervisor
# ----------------------------------------------------------------------
class SweepSupervisor:
    """Cross-``run_many`` context for one campaign (see module doc)."""

    def __init__(self, keep_going: bool = True,
                 retry: Optional[RetryPolicy] = None,
                 timeout: Optional[float] = None,
                 manifest: Optional[SweepManifest] = None,
                 incidents: Optional[Any] = None) -> None:
        self.keep_going = keep_going
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self.timeout = timeout          # None = per-spec default
        self.manifest = manifest
        self.incidents = incidents      # repro.obs.incidents.IncidentLog
        self.failures: List[FailedResult] = []
        self.interrupted = False
        self._signal_count = 0
        self._old_handlers: Dict[int, Any] = {}

    # -- recording ------------------------------------------------------
    def record_incident(self, event: str,
                        spec: Optional[ExperimentSpec] = None,
                        **fields: Any) -> None:
        if self.incidents is None:
            return
        if spec is not None:
            fields.setdefault("label", spec.label())
            fields.setdefault("key", spec.key()[:12])
        self.incidents.add(event, **fields)

    def record_failure(self, failure: FailedResult) -> None:
        self.failures.append(failure)
        if self.manifest is not None:
            self.manifest.mark_failed(failure)
            self.manifest.checkpoint()
        self.record_incident("failure", failure.spec, kind=failure.kind,
                             error=failure.error, attempts=failure.attempts)

    def flush(self, force: bool = False) -> None:
        """Write the manifest out (always when ``force``)."""
        if self.manifest is None:
            return
        if force:
            try:
                self.manifest.save()
            except OSError as exc:
                log.warning("manifest flush failed: %s", exc)
        else:
            self.manifest.checkpoint()

    # -- signals --------------------------------------------------------
    def install_signal_handlers(self) -> None:
        """SIGINT/SIGTERM -> graceful stop + manifest flush (main thread
        only; a second signal falls through to KeyboardInterrupt)."""
        import signal
        import threading
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old_handlers[signum] = signal.signal(
                    signum, self._on_signal)
            except (ValueError, OSError):  # exotic embedding
                continue

    def restore_signal_handlers(self) -> None:
        import signal
        for signum, handler in self._old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                continue
        self._old_handlers.clear()

    def _on_signal(self, signum: int, frame: Any) -> None:
        self._signal_count += 1
        self.interrupted = True
        if self.incidents is not None:
            self.incidents.add("interrupt", signal=signum,
                               count=self._signal_count)
        if self._signal_count >= 2:
            # The polite stop is being ignored (or is too slow for the
            # user) — flush what we have and die the classic way.
            self.flush(force=True)
            self.restore_signal_handlers()
            raise KeyboardInterrupt


_ACTIVE: Optional[SweepSupervisor] = None


def active_supervisor() -> Optional[SweepSupervisor]:
    return _ACTIVE


class supervised_sweep:
    """Context manager installing a :class:`SweepSupervisor` process-wide.

    While active, every :func:`repro.harness.runner.run_many` call picks
    up the supervisor's retry/timeout/keep-going settings, records
    failures into it, and checkpoints its manifest — which is what lets
    a *named* sweep (several ``run_many`` calls deep inside figure code)
    behave as one supervised campaign.
    """

    def __init__(self, keep_going: bool = True,
                 retry: Optional[RetryPolicy] = None,
                 timeout: Optional[float] = None,
                 manifest: Optional[SweepManifest] = None,
                 incidents: Optional[Any] = None) -> None:
        self._sup = SweepSupervisor(keep_going=keep_going, retry=retry,
                                    timeout=timeout, manifest=manifest,
                                    incidents=incidents)

    def __enter__(self) -> SweepSupervisor:
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a supervised sweep is already active")
        _ACTIVE = self._sup
        self._sup.install_signal_handlers()
        return self._sup

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        global _ACTIVE
        _ACTIVE = None
        self._sup.restore_signal_handlers()


# ----------------------------------------------------------------------
# Failure classification (shared by both pool flavors)
# ----------------------------------------------------------------------
def classify_failure(retry: RetryPolicy,
                     supervisor: Optional[SweepSupervisor],
                     spec: ExperimentSpec, attempt: int, kind: str,
                     error: str, message: str, traceback: str,
                     duration: float, requeue: Callable[[], None],
                     fail: Callable[[FailedResult], None],
                     worker: Optional[int] = None,
                     ckpt: Optional[Dict[str, Any]] = None) -> None:
    """Route one bad point: transient -> ``requeue``, else ``fail``.

    The spawn pool (:class:`SupervisedPool`) and the warm pool
    (:mod:`repro.harness.turbo`) share this so retry/backoff semantics
    cannot drift between them.  ``worker`` (a pid) attributes timeout and
    crash incidents to the specific worker process that served the point.
    ``ckpt`` (``{"path", "events"}``) rides along for ``preempted``
    points: the incident names the save-state and the manifest records
    the checkpoint lineage, so the requeued attempt's restore is
    auditable.
    """
    transient = retry.is_transient_name(error)
    if supervisor is not None and kind in ("timeout", "crash", "preempted"):
        extra: Dict[str, Any] = {} if worker is None else {"worker": worker}
        if ckpt:
            extra["ckpt"] = ckpt.get("path")
            extra["events"] = ckpt.get("events")
        supervisor.record_incident(kind, spec, error=error, attempt=attempt,
                                   **extra)
    if kind == "preempted" and supervisor is not None \
            and supervisor.manifest is not None:
        supervisor.manifest.mark_preempted(spec, (ckpt or {}).get("path"))
    if transient and attempt + 1 < retry.max_attempts:
        requeue()
        return
    fail(FailedResult(spec=spec, kind=kind, error=error, message=message,
                      traceback=traceback, attempts=attempt + 1,
                      duration=duration, permanent=not transient))


# ----------------------------------------------------------------------
# Supervised worker pool
# ----------------------------------------------------------------------
def _supervised_worker(conn: Any, spec_data: Dict[str, Any],
                       attempt: int) -> None:
    """Child-process entry point: simulate one spec, send one payload.

    Failures are *reported*, not raised — the parent classifies them.
    Chaos (``REPRO_CHAOS``) injects its disruptive faults here, where a
    kill or hang only costs one sacrificial worker.
    """
    start = time.monotonic()
    notes: Dict[str, Any] = {}
    try:
        from ..checks.chaos import chaos_from_env, inject_execute
        preempt.clear_preempt()   # a late signal for a previous task
        if preempt.checkpoint_from_env() is not None:
            # Only checkpointed tasks trade SIGTERM for a clean preempt;
            # otherwise default teardown keeps watchdog kills instant.
            preempt.install_preempt_handler()
        spec = ExperimentSpec.from_dict(spec_data)
        chaos = chaos_from_env()
        if chaos is not None:
            inject_execute(chaos, spec.key(), attempt, disruptive_ok=True)
        result = spec.execute(notes=notes)
        payload: Dict[str, Any] = {"ok": True, "result": result.to_dict(),
                                   "duration": time.monotonic() - start}
    except preempt.PreemptedError as exc:
        payload = {"ok": False, "preempted": True, "error": PREEMPT_ERROR,
                   "message": str(exc),
                   "ckpt": {"path": exc.path, "events": exc.events},
                   "duration": time.monotonic() - start}
    except BaseException as exc:   # report absolutely everything
        import traceback as tb_mod
        payload = {"ok": False, "error": type(exc).__name__,
                   "message": str(exc),
                   "traceback": tb_mod.format_exc()[-4000:],
                   "duration": time.monotonic() - start}
    if notes:
        payload["notes"] = notes
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):  # parent already gave up on us
        pass
    finally:
        conn.close()


#: sentinel distinguishing "recv from the pipe" from "payload is None
#: because the worker died" in SupervisedPool's reap path
_UNRECEIVED = object()


class _ActiveTask:
    """One live worker process and its deadline."""

    __slots__ = ("spec", "key", "attempt", "proc", "conn", "started",
                 "deadline")

    def __init__(self, spec: ExperimentSpec, attempt: int, proc: Any,
                 conn: Any, started: float,
                 deadline: Optional[float]) -> None:
        self.spec = spec
        self.key = spec.key()
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = started
        self.deadline = deadline


class SupervisedPool:
    """Process-per-task pool with watchdog, retries, and crash detection.

    Compared to ``concurrent.futures.ProcessPoolExecutor``, giving every
    point its own (forked) process buys three things the fault-tolerance
    layer needs: a hung point can be killed without tearing down healthy
    siblings, a worker that dies (``exit(137)``) is attributable to
    exactly one spec, and one poisoned interpreter state can never leak
    into later points.  The fork cost is microseconds next to a
    seconds-long simulation.
    """

    def __init__(self, n_workers: int, retry: RetryPolicy,
                 timeout_for: Callable[[ExperimentSpec], Optional[float]],
                 supervisor: Optional[SweepSupervisor] = None,
                 poll_interval: float = 0.05) -> None:
        self.n_workers = max(1, n_workers)
        self.retry = retry
        self.timeout_for = timeout_for
        self.supervisor = supervisor
        self.poll_interval = poll_interval

    # -- public ---------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec],
            on_success: Callable[[ExperimentSpec, SimResult, float], None],
            on_failure: Callable[[FailedResult], None],
            on_retry: Optional[Callable[[ExperimentSpec, int, str], None]]
            = None,
            keep_going: bool = True) -> None:
        """Resolve every spec, retrying transients; see module doc.

        Raises :class:`PoolUnavailable` if processes cannot be created
        (the caller falls back to serial execution for whatever has not
        completed) and :class:`SweepInterrupted` on a supervised signal.
        """
        try:
            import multiprocessing as mp
            from multiprocessing.connection import wait as mp_wait
        except ImportError as exc:   # stripped-down stdlib
            raise PoolUnavailable(exc) from exc
        ctx = mp.get_context()

        # (spec, attempt, not-before) — retries wait out their backoff
        queue: List[Tuple[ExperimentSpec, int, float]] = [
            (spec, 0, 0.0) for spec in specs]
        active: List[_ActiveTask] = []
        aborted = False

        def launch(spec: ExperimentSpec, attempt: int) -> None:
            try:
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_supervised_worker,
                                   args=(child_conn, spec.to_dict(), attempt),
                                   daemon=True)
                proc.start()
            except (OSError, PermissionError, ValueError) as exc:
                raise PoolUnavailable(exc) from exc
            child_conn.close()
            now = time.monotonic()
            timeout = self.timeout_for(spec)
            active.append(_ActiveTask(
                spec, attempt, proc, parent_conn, now,
                None if timeout is None else now + timeout))

        def reap(task: _ActiveTask,
                 payload: Any = _UNRECEIVED) -> None:
            """A task's pipe is readable: result, reported error, or EOF
            from a dead worker.  ``payload`` is passed pre-received when
            :func:`repro.harness.preempt.try_preempt` already drained
            the pipe."""
            if payload is _UNRECEIVED:
                try:
                    payload = task.conn.recv()
                except (EOFError, OSError):
                    payload = None
            task.conn.close()
            task.proc.join()
            active.remove(task)
            if payload is not None:
                self._record_notes(task.spec, payload)
            if payload is None:
                code = task.proc.exitcode
                self._handle_bad(task, "crash", CRASH_ERROR,
                                 f"worker exited with code {code}", "",
                                 time.monotonic() - task.started,
                                 requeue, fail)
            elif payload.get("ok"):
                on_success(task.spec,
                           SimResult.from_dict(payload["result"]),
                           payload["duration"])
            elif payload.get("preempted"):
                self._handle_bad(task, "preempted", payload["error"],
                                 payload["message"], "",
                                 payload.get("duration", 0.0),
                                 requeue, fail, ckpt=payload.get("ckpt"))
            else:
                self._handle_bad(task, "error", payload["error"],
                                 payload["message"],
                                 payload.get("traceback", ""),
                                 payload.get("duration", 0.0),
                                 requeue, fail)

        def kill(task: _ActiveTask, reason: str) -> None:
            task.proc.terminate()
            task.proc.join(1.0)
            if task.proc.is_alive():   # SIGTERM ignored — escalate
                task.proc.kill()
                task.proc.join(1.0)
            task.conn.close()
            if task in active:
                active.remove(task)

        def requeue(task: _ActiveTask, error: str) -> None:
            if on_retry is not None:
                on_retry(task.spec, task.attempt, error)
            if self.supervisor is not None:
                self.supervisor.record_incident(
                    "retry", task.spec, error=error, attempt=task.attempt)
            delay = self.retry.delay(task.key, task.attempt)
            queue.append((task.spec, task.attempt + 1,
                          time.monotonic() + delay))

        def fail(failure: FailedResult) -> None:
            nonlocal aborted
            on_failure(failure)
            if not keep_going:
                aborted = True

        guards = preempt.guards_from_env()
        guard_next = 0.0

        def guard_sweep(now: float) -> None:
            """RSS/disk budget checks (~1s cadence): breach -> preempt
            the worker (clean checkpoint) or kill it; either way the
            point requeues as ``preempted`` and resumes or restarts."""
            ckpt_cfg = preempt.checkpoint_from_env()
            disk_path = ckpt_cfg.dir if ckpt_cfg is not None else "."
            for task in list(active):
                breach = preempt.guard_breach(guards, task.proc.pid,
                                              disk_path)
                if breach is None:
                    continue
                if self.supervisor is not None:
                    self.supervisor.record_incident(
                        "guard", task.spec, reason=breach,
                        worker=task.proc.pid)
                if self._try_preempt(task, reap):
                    continue
                kill(task, "guard")
                self._handle_bad(task, "preempted", PREEMPT_ERROR, breach,
                                 "", now - task.started, requeue, fail)

        try:
            while queue or active:
                if self.supervisor is not None and self.supervisor.interrupted:
                    self._abort(active, kill)
                    raise SweepInterrupted()
                if aborted:
                    self._abort(active, kill)
                    queue.clear()
                    break
                now = time.monotonic()
                while len(active) < self.n_workers:
                    index = next((i for i, (_, _, nb) in enumerate(queue)
                                  if nb <= now), None)
                    if index is None:
                        break
                    spec, attempt, _ = queue.pop(index)
                    launch(spec, attempt)
                if not active:
                    if queue:   # everything is backing off
                        next_at = min(nb for _, _, nb in queue)
                        time.sleep(min(0.25, max(0.0, next_at - now)))
                    continue
                wait_for = self.poll_interval
                deadlines = [t.deadline for t in active
                             if t.deadline is not None]
                if deadlines:
                    wait_for = min(wait_for,
                                   max(0.0, min(deadlines) - now))
                ready = mp_wait([t.conn for t in active], timeout=wait_for)
                ready_set = set(ready)
                for task in [t for t in active if t.conn in ready_set]:
                    reap(task)
                now = time.monotonic()
                for task in [t for t in active
                             if t.deadline is not None
                             and now > t.deadline]:
                    # Checkpoint-first: a preempted point resumes from
                    # its save-state instead of repeating all its work.
                    if self._try_preempt(task, reap):
                        continue
                    kill(task, "timeout")
                    self._handle_bad(
                        task, "timeout", TIMEOUT_ERROR,
                        f"point exceeded its "
                        f"{task.deadline - task.started:.0f}s deadline",
                        "", now - task.started, requeue, fail)
                if guards.enabled and now >= guard_next:
                    guard_next = now + 1.0
                    guard_sweep(now)
        except PoolUnavailable:
            self._abort(active, kill)
            raise
        except BaseException:
            self._abort(active, kill)
            raise

    # -- internals ------------------------------------------------------
    def _handle_bad(self, task: _ActiveTask, kind: str, error: str,
                    message: str, traceback: str, duration: float,
                    requeue: Callable[[_ActiveTask, str], None],
                    fail: Callable[[FailedResult], None],
                    ckpt: Optional[Dict[str, Any]] = None) -> None:
        classify_failure(self.retry, self.supervisor, task.spec,
                         task.attempt, kind, error, message, traceback,
                         duration, lambda: requeue(task, error), fail,
                         worker=task.proc.pid, ckpt=ckpt)

    def _record_notes(self, spec: ExperimentSpec,
                      payload: Dict[str, Any]) -> None:
        """Turn a worker's restore annotations into incidents."""
        if self.supervisor is None:
            return
        notes = payload.get("notes") or {}
        if "resumed" in notes:
            self.supervisor.record_incident("resumed", spec,
                                            events=notes["resumed"])
        if "quarantined" in notes:
            self.supervisor.record_incident("ckpt-quarantined", spec,
                                            reason=notes["quarantined"])

    def _try_preempt(self, task: _ActiveTask,
                     reap: Callable[..., None]) -> bool:
        """Ask a live worker to checkpoint instead of killing it.

        True when the worker answered within the grace period — whatever
        payload arrived (a preempted report, or a normal result racing
        the signal) has been routed through ``reap``.
        """
        if preempt.checkpoint_from_env() is None:
            return False
        payload = preempt.try_preempt(task.proc, task.conn)
        if payload is None:
            return False
        reap(task, payload)
        return True

    @staticmethod
    def _abort(active: List[_ActiveTask],
               kill: Callable[[_ActiveTask, str], None]) -> None:
        for task in list(active):
            kill(task, "abort")


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_failure_table(failures: Sequence[FailedResult]) -> str:
    """The CLI's failure table (one row per permanently failed point)."""
    from ..analysis.reporting import format_table
    rows = []
    for failure in failures:
        message = failure.message
        if len(message) > 60:
            message = message[:57] + "..."
        rows.append([failure.label, failure.kind, failure.error,
                     str(failure.attempts), message])
    header = f"{len(failures)} point(s) failed:"
    return "\n".join([header, format_table(
        ["point", "kind", "error", "attempts", "message"], rows)])
