"""Standalone single-level cache simulator (no timing).

A fast hit/miss-only simulator over one cache level, used for:

* unit/property testing of replacement policies in isolation,
* Belady-OPT comparisons (it precomputes each access's next use, which the
  timing simulator cannot know),
* quick locality studies in examples.

It drives the exact same :class:`~repro.policies.base.ReplacementPolicy`
objects as the timing simulator, so a policy validated here runs unchanged
in the full hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from ..policies.base import PolicyAccess
from ..policies.opt import NEVER
from ..policies.registry import make_policy
from ..sim.cache import CacheBlock
from ..sim.config import BLOCK_BITS
from ..sim.request import AccessType


@dataclass
class CacheSimResult:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    hit_vector: List[bool] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def _normalize(accesses: Sequence) -> List[Tuple[int, int]]:
    """Accept TraceRecords, (pc, addr) pairs, or bare addresses."""
    out: List[Tuple[int, int]] = []
    for a in accesses:
        if hasattr(a, "addr"):
            out.append((a.pc, a.addr))
        elif isinstance(a, tuple):
            out.append((a[0], a[1]))
        else:
            out.append((0, int(a)))
    return out


def _next_use_indices(blocks: List[int]) -> List[int]:
    """For each access, the index of the next access to the same block."""
    nxt = [NEVER] * len(blocks)
    last_seen: Dict[int, int] = {}
    for i in range(len(blocks) - 1, -1, -1):
        nxt[i] = last_seen.get(blocks[i], NEVER)
        last_seen[blocks[i]] = i
    return nxt


def simulate_cache(accesses: Sequence, sets: int, ways: int,
                   policy: Union[str, object] = "lru", seed: int = 0,
                   record_hits: bool = False,
                   **policy_kwargs) -> CacheSimResult:
    """Run ``accesses`` through one set-associative cache level.

    ``policy`` may be a registry name (``"opt"`` works here — next-use
    indices are precomputed) or an already-constructed policy object.
    """
    if sets < 1 or sets & (sets - 1):
        raise ValueError("sets must be a power of two")
    seq = _normalize(accesses)
    if isinstance(policy, str):
        pol = make_policy(policy, sets=sets, ways=ways, seed=seed,
                          **policy_kwargs)
    else:
        pol = policy

    set_mask = sets - 1
    set_bits = sets.bit_length() - 1
    blocks = [addr >> BLOCK_BITS for _, addr in seq]
    needs_future = getattr(pol, "requires_future", False)
    next_use = _next_use_indices(blocks) if needs_future else None

    array: List[List[CacheBlock]] = [
        [CacheBlock() for _ in range(ways)] for _ in range(sets)
    ]
    result = CacheSimResult()

    for i, ((pc, addr), block) in enumerate(zip(seq, blocks)):
        set_idx = block & set_mask
        tag = block >> set_bits
        line = array[set_idx]
        access = PolicyAccess(
            pc=pc, addr=addr, core=0, rtype=AccessType.LOAD,
            next_use=next_use[i] if next_use is not None else -1,
        )
        result.accesses += 1
        way = -1
        for w, blk in enumerate(line):
            if blk.valid and blk.tag == tag:
                way = w
                break
        if way >= 0:
            result.hits += 1
            pol.on_hit(set_idx, way, line, access)
            if record_hits:
                result.hit_vector.append(True)
            continue
        result.misses += 1
        if record_hits:
            result.hit_vector.append(False)
        way = -1
        for w, blk in enumerate(line):
            if not blk.valid:
                way = w
                break
        if way < 0:
            way = pol.check_way(pol.find_victim(set_idx, line, access))
            pol.on_evict(set_idx, way, line, access)
            result.evictions += 1
        blk = line[way]
        blk.valid = True
        blk.tag = tag
        blk.pc = pc
        pol.on_fill(set_idx, way, line, access)

    return result
