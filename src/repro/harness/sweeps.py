"""Named figure sweeps for ``python -m repro sweep``.

Each entry reproduces one paper figure's sweep through the parallel
runner and renders an aligned table via
:func:`repro.analysis.reporting.format_table`.  Scale comes from the
active :class:`~repro.harness.scale.BenchScale`, so the CLI can shrink a
sweep with ``--workloads`` / ``--records`` / ``--mixes`` without
environment gymnastics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.metrics import geometric_mean, normalized_weighted_ipc
from ..analysis.reporting import format_table
from .experiment import (
    NOPREFETCH_SCHEMES,
    PREFETCH_SCHEMES,
    bench_gap_workloads,
    bench_spec_workloads,
    scaling_sweep,
    speedup_sweep,
)
from .runner import run_many
from .scale import get_scale
from .spec import ExperimentSpec

#: a sweep function: (workers, progress) -> rendered table text
SweepFn = Callable[[Optional[int], object], str]


def _cell(value: Optional[float]) -> str:
    """A failed point renders as a hole, not a crashed sweep."""
    return "-" if value is None else f"{value:.3f}"


@dataclass(frozen=True)
class SweepDef:
    name: str
    title: str
    fn: SweepFn


def _speedup(title: str, suite: str, schemes: List[str], prefetch: bool,
             workloads_fn) -> SweepFn:
    def collect(workers: Optional[int], progress) -> str:
        table = speedup_sweep(workloads_fn(), schemes, n_cores=4,
                              prefetch=prefetch, suite=suite,
                              workers=workers, progress=progress)
        rows = [[w] + [_cell(table[w][p]) for p in schemes]
                for w in table]
        return "\n".join([title, format_table(["workload"] + schemes, rows)])
    return collect


def _scaling(title: str, suite: str, schemes: List[str],
             prefetch: bool, workloads_fn) -> SweepFn:
    def collect(workers: Optional[int], progress) -> str:
        out = scaling_sweep(workloads_fn(), schemes, core_counts=(4, 8, 16),
                            prefetch=prefetch, suite=suite, workers=workers)
        rows = [[f"{cores} cores"] + [_cell(out[cores][p])
                                      for p in schemes]
                for cores in sorted(out)]
        return "\n".join([title, format_table(["config"] + schemes, rows)])
    return collect


def _mixed(workers: Optional[int], progress) -> str:
    from ..workloads.mixes import mixed_workload_names
    schemes = PREFETCH_SCHEMES
    n_mixes = get_scale().mixes
    # Fan the whole (mix x policy) grid plus the IPC_alone baselines out in
    # one run_many call, then assemble the per-mix rows.
    alone_specs = {
        name: ExperimentSpec.single(name, "lru", prefetch=True)
        for mix_id in range(n_mixes)
        for name in mixed_workload_names(4, mix_id)
    }
    mix_specs = {(mix_id, policy): ExperimentSpec.mix(mix_id, policy)
                 for mix_id in range(n_mixes) for policy in schemes}
    ordered = list(alone_specs.values()) + list(mix_specs.values())
    resolved = dict(zip(ordered, run_many(ordered, workers=workers,
                                          progress=progress)))
    rows = []
    gm_values: Dict[str, List[float]] = {p: [] for p in schemes}
    for mix_id in range(n_mixes):
        names = mixed_workload_names(4, mix_id)
        alone_results = [resolved[alone_specs[n]] for n in names]
        base = resolved[mix_specs[(mix_id, "lru")]]
        # A failed baseline (mix or IPC_alone) sinks the whole row; a
        # failed policy point only holes its own cell.
        if base is None or any(r is None for r in alone_results):
            rows.append([f"mix{mix_id:03d}"] + ["-"] * len(schemes))
            continue
        alone = [r.ipc[0] for r in alone_results]
        row = []
        for policy in schemes:
            res = resolved[mix_specs[(mix_id, policy)]]
            if res is None:
                row.append("-")
                continue
            value = normalized_weighted_ipc(res, base, alone)
            row.append(f"{value:.3f}")
            gm_values[policy].append(value)
        rows.append([f"mix{mix_id:03d}"] + row)
    rows.append(["GEOMEAN"] + [
        _cell(geometric_mean(gm_values[p]) if gm_values[p] else None)
        for p in schemes])
    return "\n".join([
        f"Fig. 10 - normalized weighted IPC, {n_mixes} mixed 4-core "
        "workloads, with prefetching",
        format_table(["mix"] + schemes, rows),
    ])


def _scaling_workloads() -> List[str]:
    return bench_spec_workloads(max(3, get_scale().workloads // 3))


SWEEPS: Dict[str, SweepDef] = {
    sweep.name: sweep for sweep in [
        SweepDef("fig07", "Fig. 7 - normalized IPC, 4-core SPEC, prefetch",
                 _speedup("Fig. 7 - normalized IPC, 4-core multi-copy SPEC, "
                          "with prefetching", "spec", PREFETCH_SCHEMES, True,
                          bench_spec_workloads)),
        SweepDef("fig09", "Fig. 9 - normalized IPC, 4-core GAP, prefetch",
                 _speedup("Fig. 9 - normalized IPC, 4-core multi-copy GAP, "
                          "with prefetching", "gap", PREFETCH_SCHEMES, True,
                          bench_gap_workloads)),
        SweepDef("fig10", "Fig. 10 - mixed 4-core workloads", _mixed),
        SweepDef("fig11", "Fig. 11 - SPEC scaling 4/8/16 cores, prefetch",
                 _scaling("Fig. 11 - GM speedup over LRU vs core count, "
                          "SPEC, with prefetching", "spec",
                          PREFETCH_SCHEMES, True, _scaling_workloads)),
        SweepDef("fig12", "Fig. 12 - GAP scaling 4/8/16 cores, prefetch",
                 _scaling("Fig. 12 - GM speedup over LRU vs core count, "
                          "GAP, with prefetching", "gap",
                          PREFETCH_SCHEMES, True,
                          lambda: bench_gap_workloads(3))),
        SweepDef("fig13", "Fig. 13 - SPEC scaling, no prefetch",
                 _scaling("Fig. 13 - GM speedup over LRU vs core count, "
                          "SPEC, no prefetching", "spec",
                          NOPREFETCH_SCHEMES, False, _scaling_workloads)),
        SweepDef("fig14", "Fig. 14 - GAP scaling, no prefetch",
                 _scaling("Fig. 14 - GM speedup over LRU vs core count, "
                          "GAP, no prefetching", "gap",
                          NOPREFETCH_SCHEMES, False,
                          lambda: bench_gap_workloads(3))),
    ]
}


def available_sweeps() -> List[Tuple[str, str]]:
    return [(d.name, d.title) for d in SWEEPS.values()]


def run_sweep(name: str, workers: Optional[int] = None,
              progress=None) -> str:
    """Execute the named sweep; returns the rendered table text."""
    try:
        sweep = SWEEPS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep {name!r}; available: {sorted(SWEEPS)}") from None
    return sweep.fn(workers, progress)
