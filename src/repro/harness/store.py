"""Persistent, content-addressed store of simulation results.

Each :class:`~repro.harness.spec.ExperimentSpec` is addressed by
``sha256(spec canonical JSON)`` *within a directory named by the code
fingerprint* — a hash over every ``repro`` source file.  Any edit to the
simulator (or policies, workload generators, ...) therefore lands in a
fresh namespace and can never serve stale results; old namespaces are
just directories that ``prune()`` can drop.

Layout::

    <root>/<fingerprint[:16]>/<spec-key[:2]>/<spec-key>.json

Each entry file holds ``{"spec": ..., "result": ..., "fingerprint": ...}``
and is written atomically (tempfile + rename), so concurrent workers and
concurrent processes may share one store without locking: the worst case
is both simulating the same point and one rename winning, which is
harmless because results are deterministic.

The default root is ``~/.cache/repro-care/results``; override with the
``REPRO_RESULT_STORE`` environment variable (set it to ``0``, ``off`` or
the empty string to disable persistence entirely).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..sim.stats import SimResult
from .spec import ExperimentSpec

ENV_VAR = "REPRO_RESULT_STORE"
_DISABLED_VALUES = {"", "0", "off", "none", "disabled"}

_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` package source file (path + contents).

    Computed once per process; ~60 small files, so the cost is a few
    milliseconds on first use.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        pkg_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            digest.update(str(path.relative_to(pkg_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_cache = digest.hexdigest()
    return _fingerprint_cache


class ResultStore:
    """On-disk result cache shared by benchmarks, examples, and the CLI."""

    def __init__(self, root: Union[str, Path],
                 fingerprint: Optional[str] = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- paths ----------------------------------------------------------
    @property
    def namespace(self) -> Path:
        return self.root / self.fingerprint[:16]

    def path_for(self, spec: ExperimentSpec) -> Path:
        key = spec.key()
        return self.namespace / key[:2] / f"{key}.json"

    # -- access ---------------------------------------------------------
    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.path_for(spec).is_file()

    def get(self, spec: ExperimentSpec) -> Optional[SimResult]:
        """The stored result for ``spec``, or ``None`` on a miss."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            result = SimResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (KeyError, ValueError, json.JSONDecodeError):
            # Unreadable/foreign entry: treat as a miss and let a fresh
            # run overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: SimResult) -> Path:
        """Persist ``result`` under ``spec``'s key (atomic rename)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"fingerprint": self.fingerprint, "spec": spec.to_dict(),
             "result": result.to_dict()},
            sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- maintenance ----------------------------------------------------
    def entries(self) -> Iterator[Path]:
        yield from self.namespace.glob("*/*.json")

    def load_entries(self) -> Iterator[tuple]:
        """Yield ``(ExperimentSpec, SimResult)`` for every readable entry.

        Deterministic order (sorted paths); unreadable or foreign files
        are skipped, mirroring :meth:`get`.  This is the report
        generator's input.
        """
        for path in sorted(self.entries()):
            try:
                payload = json.loads(path.read_text())
                spec = ExperimentSpec.from_dict(payload["spec"])
                result = SimResult.from_dict(payload["result"])
            except (OSError, KeyError, TypeError, ValueError,
                    json.JSONDecodeError):
                continue
            yield spec, result

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def prune_stale(self) -> int:
        """Drop namespaces belonging to older code fingerprints."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for child in self.root.iterdir():
            if child.is_dir() and child != self.namespace:
                shutil.rmtree(child, ignore_errors=True)
                removed += 1
        return removed

    def clear(self) -> None:
        shutil.rmtree(self.namespace, ignore_errors=True)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultStore({str(self.namespace)!r}, hits={self.hits}, "
                f"misses={self.misses}, writes={self.writes})")


_default_store: Optional[ResultStore] = None
_default_resolved = False


def default_store() -> Optional[ResultStore]:
    """Process-wide store from ``REPRO_RESULT_STORE`` (``None`` if disabled
    or the directory cannot be created)."""
    global _default_store, _default_resolved
    if not _default_resolved:
        _default_resolved = True
        raw = os.environ.get(ENV_VAR)
        if raw is not None and raw.strip().lower() in _DISABLED_VALUES:
            _default_store = None
        else:
            root = Path(raw) if raw else (
                Path.home() / ".cache" / "repro-care" / "results")
            store = ResultStore(root)
            try:
                store.namespace.mkdir(parents=True, exist_ok=True)
                _default_store = store
            except OSError:
                _default_store = None
    return _default_store


def set_default_store(store: Optional[ResultStore]) -> None:
    """Install ``store`` process-wide (tests use this with a tmp dir)."""
    global _default_store, _default_resolved
    _default_store = store
    _default_resolved = True


def reset_default_store() -> None:
    """Forget the cached default; next use re-reads the environment."""
    global _default_store, _default_resolved
    _default_store = None
    _default_resolved = False
