"""Persistent, content-addressed store of simulation results.

Each :class:`~repro.harness.spec.ExperimentSpec` is addressed by
``sha256(spec canonical JSON)`` *within a directory named by the code
fingerprint* — a hash over every ``repro`` source file.  Any edit to the
simulator (or policies, workload generators, ...) therefore lands in a
fresh namespace and can never serve stale results; old namespaces are
just directories that ``prune()`` can drop.

Layout::

    <root>/<fingerprint[:16]>/<spec-key[:2]>/<spec-key>.json

Each entry file holds ``{"spec": ..., "result": ..., "fingerprint": ...}``
and is written atomically (tempfile + rename), so concurrent workers and
concurrent processes may share one store without locking: the worst case
is both simulating the same point and one rename winning, which is
harmless because results are deterministic.

The default root is ``~/.cache/repro-care/results``; override with the
``REPRO_RESULT_STORE`` environment variable (set it to ``0``, ``off`` or
the empty string to disable persistence entirely).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..sim.stats import SimResult
from .spec import ExperimentSpec

log = logging.getLogger(__name__)

ENV_VAR = "REPRO_RESULT_STORE"
_DISABLED_VALUES = {"", "0", "off", "none", "disabled"}

_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` package source file (path + contents).

    Computed once per process; ~60 small files, so the cost is a few
    milliseconds on first use.  Worker-safe memo: the value is a pure
    function of the installed source tree, so every task in a warm
    worker computes (or reuses) the identical string.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        pkg_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            digest.update(str(path.relative_to(pkg_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_cache = digest.hexdigest()  # simsan: skip=SS601
    return _fingerprint_cache


@dataclass
class FsckReport:
    """What ``ResultStore.fsck`` found and did."""

    scanned: int = 0
    ok: int = 0
    quarantined: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)   # per-file reasons

    def summary(self) -> str:
        return (f"fsck: {self.scanned} entr(ies) scanned, {self.ok} ok, "
                f"{len(self.quarantined)} quarantined")


class ResultStore:
    """On-disk result cache shared by benchmarks, examples, and the CLI."""

    def __init__(self, root: Union[str, Path],
                 fingerprint: Optional[str] = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0

    # -- paths ----------------------------------------------------------
    @property
    def namespace(self) -> Path:
        return self.root / self.fingerprint[:16]

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine" / self.fingerprint[:16]

    def path_for(self, spec: ExperimentSpec) -> Path:
        key = spec.key()
        return self.namespace / key[:2] / f"{key}.json"

    # -- access ---------------------------------------------------------
    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.path_for(spec).is_file()

    def get(self, spec: ExperimentSpec) -> Optional[SimResult]:
        """The stored result for ``spec``, or ``None`` on a miss.

        A corrupt or truncated entry (torn write, bad disk, chaos) is
        *quarantined* — moved aside under ``quarantine/`` with a warning
        — instead of silently shadowing the key forever; the caller sees
        a miss and a fresh simulation rewrites the entry.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            result = SimResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            self._quarantine(path, reason=f"{type(exc).__name__}: {exc}")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: SimResult) -> Path:
        """Persist ``result`` under ``spec``'s key (atomic rename)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"fingerprint": self.fingerprint, "spec": spec.to_dict(),
             "result": result.to_dict()},
            sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        self._maybe_chaos_corrupt(spec, path)
        return path

    def _maybe_chaos_corrupt(self, spec: ExperimentSpec,
                             path: Path) -> None:
        """Chaos hook: ``REPRO_CHAOS`` ``corrupt`` truncates selected
        freshly written entries so the quarantine/fsck path is exercised
        against real torn files."""
        from ..checks.chaos import chaos_from_env, corrupt_entry
        chaos = chaos_from_env()
        if chaos is not None and corrupt_entry(chaos, spec.key(), path):
            log.debug("chaos: corrupted store entry %s", path.name)

    def _quarantine(self, path: Path, reason: str = "") -> Optional[Path]:
        """Move a bad entry into ``quarantine/`` (never raises)."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / path.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = self.quarantine_dir / f"{path.name}.{suffix}"
            os.replace(path, target)
        except OSError as exc:
            log.warning("could not quarantine corrupt entry %s: %s",
                        path, exc)
            return None
        self.quarantined += 1
        log.warning("quarantined corrupt store entry %s (%s)",
                    path.name, reason or "unreadable")
        return target

    # -- maintenance ----------------------------------------------------
    def entries(self) -> Iterator[Path]:
        yield from self.namespace.glob("*/*.json")

    def load_entries(self) -> Iterator[tuple]:
        """Yield ``(ExperimentSpec, SimResult)`` for every readable entry.

        Deterministic order (sorted paths); unreadable or foreign files
        are skipped, mirroring :meth:`get`.  This is the report
        generator's input.
        """
        for path in sorted(self.entries()):
            try:
                payload = json.loads(path.read_text())
                spec = ExperimentSpec.from_dict(payload["spec"])
                result = SimResult.from_dict(payload["result"])
            except (OSError, KeyError, TypeError, ValueError,
                    json.JSONDecodeError):
                continue
            yield spec, result

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def fsck(self) -> FsckReport:
        """Scan the current namespace; quarantine corrupt entries.

        An entry is healthy when it parses as JSON, carries ``spec`` and
        ``result`` payloads that round-trip through their classes, and
        sits under the filename matching its spec's content key.
        Anything else — truncated writes, bit rot, hand-edited or
        misfiled entries — moves to ``quarantine/`` and is reported, so
        the next sweep re-simulates those points instead of serving
        garbage or silently missing forever.
        """
        report = FsckReport()
        for path in sorted(self.entries()):
            report.scanned += 1
            reason = None
            try:
                payload = json.loads(path.read_text())
                spec = ExperimentSpec.from_dict(payload["spec"])
                SimResult.from_dict(payload["result"])
                if spec.key() != path.stem:
                    reason = (f"key mismatch: spec hashes to "
                              f"{spec.key()[:12]}..., filed as "
                              f"{path.stem[:12]}...")
            except (OSError, KeyError, TypeError, ValueError,
                    json.JSONDecodeError) as exc:
                reason = f"{type(exc).__name__}: {exc}"
            if reason is None:
                report.ok += 1
                continue
            report.errors.append(f"{path.name}: {reason}")
            moved = self._quarantine(path, reason=reason)
            if moved is not None:
                report.quarantined.append(str(moved))
        return report

    def prune_stale(self) -> int:
        """Drop namespaces belonging to older code fingerprints."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for child in self.root.iterdir():
            if (child.is_dir() and child != self.namespace
                    and child.name != "quarantine"):
                shutil.rmtree(child, ignore_errors=True)
                removed += 1
        return removed

    def clear(self) -> None:
        shutil.rmtree(self.namespace, ignore_errors=True)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "quarantined": self.quarantined}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultStore({str(self.namespace)!r}, hits={self.hits}, "
                f"misses={self.misses}, writes={self.writes})")


_default_store: Optional[ResultStore] = None
_default_resolved = False


def default_store() -> Optional[ResultStore]:
    """Process-wide store from ``REPRO_RESULT_STORE`` (``None`` if disabled
    or the directory cannot be created)."""
    global _default_store, _default_resolved
    if not _default_resolved:
        _default_resolved = True
        raw = os.environ.get(ENV_VAR)
        if raw is not None and raw.strip().lower() in _DISABLED_VALUES:
            _default_store = None
        else:
            root = Path(raw) if raw else (
                Path.home() / ".cache" / "repro-care" / "results")
            store = ResultStore(root)
            try:
                store.namespace.mkdir(parents=True, exist_ok=True)
                _default_store = store
            except OSError:
                _default_store = None
    return _default_store


def set_default_store(store: Optional[ResultStore]) -> None:
    """Install ``store`` process-wide (tests use this with a tmp dir)."""
    global _default_store, _default_resolved
    _default_store = store
    _default_resolved = True


def reset_default_store() -> None:
    """Forget the cached default; next use re-reads the environment."""
    global _default_store, _default_resolved
    _default_store = None
    _default_resolved = False
