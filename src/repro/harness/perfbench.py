"""Simulation-kernel throughput microbenchmarks.

Every paper figure is a sweep of full-hierarchy simulations, so the
per-event cost of ``Engine``/``Cache``/``MemRequest`` is the ceiling on
reproduction fidelity (DESIGN.md's "Python speed gate").  This module
measures that ceiling directly: fixed-seed simulation points at 1, 4 and
8 cores, timed end to end, reported as **records/sec** (trace records
retired per wall-clock second) and **events/sec** (engine events
processed per wall-clock second).

``python -m repro perf`` runs the suite and writes ``BENCH_perf.json``,
so every PR can record a perf trajectory; ``--smoke`` shrinks the traces
for CI.  Trace generation and machine construction are excluded from the
timed region — the numbers isolate the simulation kernel itself.

The cases reuse :class:`~repro.harness.spec.ExperimentSpec` as the point
description, but bypass the runner/result-store on purpose: a perf
benchmark must simulate, never serve a cached result.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..sim.backends import build_system, resolve_engine
from .spec import ExperimentSpec

#: v2: payloads and cases record the engine backend that produced them.
SCHEMA_VERSION = 2

#: Default output file, written into the current directory.
DEFAULT_OUTPUT = "BENCH_perf.json"

#: Fixed-seed measurement points.  ``4core`` is the headline number (the
#: multi-copy smoke config every paper figure is built from); 1 and 8
#: cores bracket the scaling range of Figs. 11-14.
PERF_CASES: Dict[str, ExperimentSpec] = {
    "1core": ExperimentSpec.multicopy(
        "429.mcf", "care", n_cores=1, prefetch=False, n_records=4000, seed=3),
    "4core": ExperimentSpec.multicopy(
        "429.mcf", "care", n_cores=4, prefetch=True, n_records=2500, seed=3),
    "8core": ExperimentSpec.multicopy(
        "429.mcf", "care", n_cores=8, prefetch=True, n_records=1200, seed=3),
}

#: Measured records per core in ``--smoke`` mode (CI-sized).
SMOKE_RECORDS = 400


def _build_system(spec: ExperimentSpec, traces: List[Sequence]):
    """The machine :meth:`ExperimentSpec.execute` would build."""
    n = min(len(t) for t in traces)
    return build_system(spec.build_config(), traces, engine=spec.engine,
                        llc_policy=spec.policy,
                        prefetch=spec.prefetch, seed=spec.seed,
                        measure_records=n // 2, warmup_records=n // 2,
                        collect_deltas=spec.collect_deltas)


def run_case(spec: ExperimentSpec, repeat: int = 3) -> Dict:
    """Time one simulation point ``repeat`` times; best-of wall clock.

    Traces are generated once, outside the timed region; each repetition
    builds a fresh :class:`System` (also untimed) and times ``run()``.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    traces = spec.build_traces()
    walls: List[float] = []
    records = events = 0
    for _ in range(repeat):
        system = _build_system(spec, traces)
        start = time.perf_counter()
        result = system.run()
        walls.append(time.perf_counter() - start)
        # Deterministic per spec: identical on every repetition.
        records = sum(core.retired_records for core in system.cores)
        events = result.events
    best = min(walls)
    return {
        "spec": spec.to_dict(),
        "engine": spec.engine,
        "repeat": repeat,
        "wall_s": [round(w, 6) for w in walls],
        "best_wall_s": round(best, 6),
        "records": records,
        "events": events,
        "records_per_s": round(records / best, 1),
        "events_per_s": round(events / best, 1),
    }


def run_suite(cases: Optional[Sequence[str]] = None, repeat: int = 3,
              smoke: bool = False,
              progress: bool = False,
              engine: Optional[str] = None) -> Dict:
    """Run the named cases (default: all) and assemble the JSON payload.

    ``engine`` selects the backend to benchmark (``REPRO_ENGINE``
    overrides, then ``--engine``/this argument, else ``classic``) —
    backends are bit-identical, so per-case records/events match across
    engines and only the wall clock moves.
    """
    names = list(cases) if cases else sorted(PERF_CASES)
    unknown = [n for n in names if n not in PERF_CASES]
    if unknown:
        raise KeyError(f"unknown perf cases {unknown}; "
                       f"available: {sorted(PERF_CASES)}")
    engine = resolve_engine(engine)
    results: Dict[str, Dict] = {}
    for name in names:
        spec = replace(PERF_CASES[name], engine=engine)
        if smoke:
            spec = replace(spec, n_records=SMOKE_RECORDS)
        if progress:
            print(f"[perf] {name}: {spec.label()} x{repeat}...",
                  file=sys.stderr)
        results[name] = run_case(spec, repeat=repeat)
        if progress:
            r = results[name]
            print(f"[perf] {name}: {r['records_per_s']:,.0f} records/s, "
                  f"{r['events_per_s']:,.0f} events/s "
                  f"(best of {repeat}: {r['best_wall_s']:.3f}s)",
                  file=sys.stderr)
    from .store import code_fingerprint
    return {
        "schema": SCHEMA_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "fingerprint": code_fingerprint()[:16],
        "smoke": smoke,
        "engine": engine,
        "cases": results,
    }


# ----------------------------------------------------------------------
# Sweep macro-benchmark (``python -m repro perf --sweep``)
# ----------------------------------------------------------------------
#: Pinned grid for the sweep-throughput benchmark: 3 workloads x 3
#: policies at 1 core on the tiny preset.  Points are deliberately
#: *small* — sweep throughput is about per-point overhead (process
#: spawn, imports, trace generation), which is exactly what the warm
#: pool and trace cache amortize and what a paper-scale campaign of
#: thousands of points is dominated by at the margin.
SWEEP_GRID_WORKLOADS = ("429.mcf", "462.libquantum", "470.lbm")
SWEEP_GRID_POLICIES = ("lru", "srrip", "care")
SWEEP_GRID_RECORDS = 150
SWEEP_SMOKE_RECORDS = 80


def sweep_grid(records: int = SWEEP_GRID_RECORDS,
               engine: str = "classic") -> List[ExperimentSpec]:
    """The pinned sweep-benchmark grid (9 points)."""
    return [ExperimentSpec.multicopy(w, p, n_cores=1, prefetch=False,
                                     n_records=records, seed=3,
                                     preset="tiny", engine=engine)
            for w in SWEEP_GRID_WORKLOADS for p in SWEEP_GRID_POLICIES]


def _run_sweep_phase(specs: Sequence[ExperimentSpec], workers: int) -> Dict:
    """One full pass over the grid, store-less and memo-cleared, so every
    point actually simulates; wall clock covers the whole ``run_many``."""
    from .runner import SweepStats, clear_memo, run_many
    clear_memo()
    stats = SweepStats()
    start = time.perf_counter()
    run_many(specs, workers=workers, store=None, stats_out=stats)
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 6),
        "points": len(specs),
        "points_per_s": round(len(specs) / wall, 2),
        "simulated": stats.simulated,
        "pool_mode": stats.pool_mode,
        "fell_back_serial": stats.fell_back_serial,
    }


def run_sweep_benchmark(repeat: int = 3, records: int = SWEEP_GRID_RECORDS,
                        workers: int = 2, engine: Optional[str] = None,
                        progress: bool = False) -> Dict:
    """Interleaved sweep-throughput comparison; returns the payload section.

    Each round runs the pinned grid twice on the same machine state:
    first **baseline** (``REPRO_POOL=spawn`` + trace cache disabled — the
    PR 5 path), then **turbo** (persistent warm pool + trace cache in a
    throwaway directory).  Turbo round 0 is the *cold* number (pool fork
    + cache misses included); later rounds are *warm*.  The headline
    speedup compares best warm turbo against best baseline, so both
    sides get their best-of treatment.
    """
    import os
    import tempfile

    from ..workloads.tracecache import ENV_VAR as TRACE_CACHE_ENV
    from ..workloads.tracecache import reset_default_trace_cache
    from .turbo import POOL_ENV, shutdown_shared_pool

    if repeat < 2:
        raise ValueError("repeat must be >= 2 (round 0 is the cold round)")
    engine = resolve_engine(engine)
    specs = sweep_grid(records, engine)
    saved = {k: os.environ.get(k) for k in (POOL_ENV, TRACE_CACHE_ENV)}
    baseline: List[Dict] = []
    cold: Dict = {}
    warm: List[Dict] = []
    reset_default_trace_cache()
    with tempfile.TemporaryDirectory(prefix="repro-sweepbench-") as tmp:
        try:
            for i in range(repeat):
                os.environ[POOL_ENV] = "spawn"
                os.environ[TRACE_CACHE_ENV] = "off"
                phase = _run_sweep_phase(specs, workers)
                baseline.append(phase)
                if progress:
                    print(f"[perf] sweep round {i}: baseline "
                          f"{phase['points_per_s']:.2f} points/s",
                          file=sys.stderr)
                os.environ[POOL_ENV] = "persistent"
                os.environ[TRACE_CACHE_ENV] = tmp
                phase = _run_sweep_phase(specs, workers)
                if i == 0:
                    cold = phase
                else:
                    warm.append(phase)
                if progress:
                    label = "cold" if i == 0 else "warm"
                    print(f"[perf] sweep round {i}: turbo ({label}) "
                          f"{phase['points_per_s']:.2f} points/s",
                          file=sys.stderr)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            reset_default_trace_cache()
            shutdown_shared_pool()
    base_best = max(p["points_per_s"] for p in baseline)
    warm_best = max(p["points_per_s"] for p in warm)
    return {
        "grid": {
            "workloads": list(SWEEP_GRID_WORKLOADS),
            "policies": list(SWEEP_GRID_POLICIES),
            "n_cores": 1, "n_records": records, "preset": "tiny",
            "points": len(specs), "engine": engine,
        },
        "workers": workers,
        "repeat": repeat,
        "baseline": {"mode": "spawn pool, trace cache off",
                     "passes": baseline, "best_points_per_s": base_best},
        "turbo_cold": cold,
        "turbo_warm": {"mode": "persistent pool, trace cache on",
                       "passes": warm, "best_points_per_s": warm_best},
        "speedup_cold_vs_baseline":
            round(cold["points_per_s"] / base_best, 2),
        "speedup_warm_vs_baseline": round(warm_best / base_best, 2),
    }


def format_sweep_payload(section: Dict) -> str:
    """Human-readable summary of one sweep-benchmark section."""
    grid = section["grid"]
    lines = [
        f"sweep throughput ({grid['points']} points: "
        f"{len(grid['workloads'])} workloads x {len(grid['policies'])} "
        f"policies, {grid['n_records']} records, preset {grid['preset']}, "
        f"engine {grid['engine']}, workers={section['workers']})",
        f"  baseline (spawn pool, cache off): "
        f"{section['baseline']['best_points_per_s']:.2f} points/s",
        f"  turbo cold (warm pool, cold cache): "
        f"{section['turbo_cold']['points_per_s']:.2f} points/s "
        f"({section['speedup_cold_vs_baseline']:.2f}x)",
        f"  turbo warm: "
        f"{section['turbo_warm']['best_points_per_s']:.2f} points/s "
        f"({section['speedup_warm_vs_baseline']:.2f}x)",
    ]
    return "\n".join(lines)


def merge_sweep_section(existing: Optional[Dict], section: Dict) -> Dict:
    """Fold a sweep section into an existing suite payload (or mint a
    minimal one), preserving the per-case microbenchmark numbers."""
    from .store import code_fingerprint
    payload = dict(existing) if existing else {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "fingerprint": code_fingerprint()[:16],
        "cases": {},
    }
    payload["sweep"] = section
    payload["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    return payload


def write_payload(payload: Dict, path: Union[str, Path] = DEFAULT_OUTPUT) -> Path:
    """Persist a suite payload (pretty, sorted keys) and return the path."""
    out = Path(path)
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return out


def diff_payloads(base: Dict, fresh: Dict) -> str:
    """Markdown trend table comparing two suite payloads (CI step summary).

    Informational only — wall-clock noise on shared runners makes this a
    trend signal, not a gate.  Cases present in only one payload show
    ``n/a``; a smoke/full or fingerprint mismatch is called out under the
    table because records/s values are then not directly comparable.
    """
    b_engine = base.get("engine", "classic")
    f_engine = fresh.get("engine", "classic")
    cross_engine = b_engine != f_engine
    speedup_head = (f" {b_engine}→{f_engine} ×" if cross_engine
                    else " ev/s ×")
    lines = [
        "| case | base rec/s | fresh rec/s | Δ rec/s | base ev/s "
        f"| fresh ev/s |{speedup_head} |",
        "|---|---:|---:|---:|---:|---:|---:|",
    ]
    names = sorted(set(base.get("cases", {})) | set(fresh.get("cases", {})))
    for name in names:
        b = base.get("cases", {}).get(name)
        f = fresh.get("cases", {}).get(name)
        if b is None or f is None:
            cells = ["n/a" if b is None else f"{b['records_per_s']:,.0f}",
                     "n/a" if f is None else f"{f['records_per_s']:,.0f}",
                     "n/a",
                     "n/a" if b is None else f"{b['events_per_s']:,.0f}",
                     "n/a" if f is None else f"{f['events_per_s']:,.0f}",
                     "n/a"]
        else:
            b_rec, f_rec = b["records_per_s"], f["records_per_s"]
            delta = (f_rec - b_rec) / b_rec * 100 if b_rec else 0.0
            b_ev, f_ev = b["events_per_s"], f["events_per_s"]
            ratio = f_ev / b_ev if b_ev else 0.0
            cells = [f"{b_rec:,.0f}", f"{f_rec:,.0f}", f"{delta:+.1f}%",
                     f"{b_ev:,.0f}", f"{f_ev:,.0f}", f"{ratio:.2f}x"]
        lines.append("| " + " | ".join([name] + cells) + " |")
    notes = []
    if cross_engine:
        notes.append(f"cross-engine comparison: base={b_engine}, "
                     f"fresh={f_engine} (backends are bit-identical; the "
                     "× column is the engine speedup)")
    if base.get("smoke") != fresh.get("smoke"):
        notes.append("payloads mix smoke and full-size traces — absolute "
                     "numbers are not comparable")
    if base.get("fingerprint") != fresh.get("fingerprint"):
        notes.append(f"code fingerprint changed "
                     f"({base.get('fingerprint')} → "
                     f"{fresh.get('fingerprint')})")
    if base.get("python") != fresh.get("python"):
        notes.append(f"python changed ({base.get('python')} → "
                     f"{fresh.get('python')})")
    text = "\n".join(lines)
    if notes:
        text += "\n\n" + "\n".join(f"> note: {n}" for n in notes)
    return text


# ----------------------------------------------------------------------
# Sweep-throughput regression gate (CI)
# ----------------------------------------------------------------------
#: set to ``off``/``0`` to skip the gate (documented CI override; the
#: ``perf-regression-ok`` PR label drives the same skip in ci.yml)
GATE_ENV = "REPRO_PERF_GATE"
GATE_THRESHOLD_ENV = "REPRO_PERF_GATE_THRESHOLD"
#: maximum tolerated drop in warm sweep throughput vs. the baseline
DEFAULT_GATE_THRESHOLD = 0.25


def _comparable_sweep_section(base: Dict, fresh_section: Dict) -> Optional[Dict]:
    """The baseline sweep section whose grid matches the fresh one.

    ``BENCH_perf.json`` carries the full-size grid under ``sweep`` and
    the CI-sized grid under ``sweep_smoke``; points/s values are only
    comparable when the grid (records, point count, engine) is the same.
    """
    grid = fresh_section.get("grid", {})
    for key in ("sweep", "sweep_smoke"):
        section = base.get(key)
        if not section:
            continue
        bgrid = section.get("grid", {})
        if (bgrid.get("n_records") == grid.get("n_records")
                and bgrid.get("points") == grid.get("points")
                and bgrid.get("engine") == grid.get("engine")):
            return section
    return None


def gate_sweep_regression(base: Dict, fresh: Dict,
                          threshold: float = DEFAULT_GATE_THRESHOLD):
    """Compare warm sweep throughput against the committed baseline.

    Returns ``(status, message)`` with status ``"ok"``, ``"fail"`` (drop
    beyond ``threshold``), or ``"skip"`` (no comparable baseline grid —
    absolute points/s are meaningless across different grids).  Unlike
    the per-case kernel diff (wall-clock noise on individual cases), the
    sweep number aggregates a whole grid twice over, which is stable
    enough to gate with a generous threshold.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    fresh_section = fresh.get("sweep")
    if not fresh_section:
        return "skip", "fresh payload has no 'sweep' section"
    section = _comparable_sweep_section(base, fresh_section)
    if section is None:
        return "skip", ("no comparable sweep baseline in BENCH_perf.json "
                        "(grid records/points/engine mismatch)")
    base_pts = section["turbo_warm"]["best_points_per_s"]
    fresh_pts = fresh_section["turbo_warm"]["best_points_per_s"]
    if base_pts <= 0:
        return "skip", "baseline sweep throughput is zero"
    delta = (fresh_pts - base_pts) / base_pts
    msg = (f"warm sweep throughput {fresh_pts:.2f} points/s vs baseline "
           f"{base_pts:.2f} ({delta * 100:+.1f}%)")
    if delta < -threshold:
        return "fail", (f"{msg} — beyond the {threshold:.0%} regression "
                        f"gate (override: {GATE_ENV}=off or the "
                        "'perf-regression-ok' PR label)")
    return "ok", msg


def merge_smoke_sweep_section(existing: Optional[Dict],
                              section: Dict) -> Dict:
    """Fold a *smoke-sized* sweep section into a payload under
    ``sweep_smoke`` (the CI gate's baseline key), like
    :func:`merge_sweep_section` does for the full-size grid."""
    from .store import code_fingerprint
    payload = dict(existing) if existing else {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "fingerprint": code_fingerprint()[:16],
        "cases": {},
    }
    payload["sweep_smoke"] = section
    payload["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    return payload


def format_payload(payload: Dict) -> str:
    """Human-readable table of one suite payload."""
    from ..analysis import format_table
    rows = []
    for name, case in payload["cases"].items():
        rows.append([
            name,
            f"{case['records']}",
            f"{case['events']}",
            f"{case['best_wall_s']:.3f}",
            f"{case['records_per_s']:,.0f}",
            f"{case['events_per_s']:,.0f}",
        ])
    header = ["case", "records", "events", "best wall (s)",
              "records/s", "events/s"]
    title = (f"simulation-kernel throughput (python {payload['python']}, "
             f"engine {payload.get('engine', 'classic')}, "
             f"best of {next(iter(payload['cases'].values()))['repeat']}"
             f"{', smoke' if payload.get('smoke') else ''})")
    return title + "\n" + format_table(header, rows)
