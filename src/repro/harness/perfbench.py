"""Simulation-kernel throughput microbenchmarks.

Every paper figure is a sweep of full-hierarchy simulations, so the
per-event cost of ``Engine``/``Cache``/``MemRequest`` is the ceiling on
reproduction fidelity (DESIGN.md's "Python speed gate").  This module
measures that ceiling directly: fixed-seed simulation points at 1, 4 and
8 cores, timed end to end, reported as **records/sec** (trace records
retired per wall-clock second) and **events/sec** (engine events
processed per wall-clock second).

``python -m repro perf`` runs the suite and writes ``BENCH_perf.json``,
so every PR can record a perf trajectory; ``--smoke`` shrinks the traces
for CI.  Trace generation and machine construction are excluded from the
timed region — the numbers isolate the simulation kernel itself.

The cases reuse :class:`~repro.harness.spec.ExperimentSpec` as the point
description, but bypass the runner/result-store on purpose: a perf
benchmark must simulate, never serve a cached result.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..sim.backends import build_system, resolve_engine
from .spec import ExperimentSpec

#: v2: payloads and cases record the engine backend that produced them.
SCHEMA_VERSION = 2

#: Default output file, written into the current directory.
DEFAULT_OUTPUT = "BENCH_perf.json"

#: Fixed-seed measurement points.  ``4core`` is the headline number (the
#: multi-copy smoke config every paper figure is built from); 1 and 8
#: cores bracket the scaling range of Figs. 11-14.
PERF_CASES: Dict[str, ExperimentSpec] = {
    "1core": ExperimentSpec.multicopy(
        "429.mcf", "care", n_cores=1, prefetch=False, n_records=4000, seed=3),
    "4core": ExperimentSpec.multicopy(
        "429.mcf", "care", n_cores=4, prefetch=True, n_records=2500, seed=3),
    "8core": ExperimentSpec.multicopy(
        "429.mcf", "care", n_cores=8, prefetch=True, n_records=1200, seed=3),
}

#: Measured records per core in ``--smoke`` mode (CI-sized).
SMOKE_RECORDS = 400


def _build_system(spec: ExperimentSpec, traces: List[Sequence]):
    """The machine :meth:`ExperimentSpec.execute` would build."""
    n = min(len(t) for t in traces)
    return build_system(spec.build_config(), traces, engine=spec.engine,
                        llc_policy=spec.policy,
                        prefetch=spec.prefetch, seed=spec.seed,
                        measure_records=n // 2, warmup_records=n // 2,
                        collect_deltas=spec.collect_deltas)


def run_case(spec: ExperimentSpec, repeat: int = 3) -> Dict:
    """Time one simulation point ``repeat`` times; best-of wall clock.

    Traces are generated once, outside the timed region; each repetition
    builds a fresh :class:`System` (also untimed) and times ``run()``.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    traces = spec.build_traces()
    walls: List[float] = []
    records = events = 0
    for _ in range(repeat):
        system = _build_system(spec, traces)
        start = time.perf_counter()
        result = system.run()
        walls.append(time.perf_counter() - start)
        # Deterministic per spec: identical on every repetition.
        records = sum(core.retired_records for core in system.cores)
        events = result.events
    best = min(walls)
    return {
        "spec": spec.to_dict(),
        "engine": spec.engine,
        "repeat": repeat,
        "wall_s": [round(w, 6) for w in walls],
        "best_wall_s": round(best, 6),
        "records": records,
        "events": events,
        "records_per_s": round(records / best, 1),
        "events_per_s": round(events / best, 1),
    }


def run_suite(cases: Optional[Sequence[str]] = None, repeat: int = 3,
              smoke: bool = False,
              progress: bool = False,
              engine: Optional[str] = None) -> Dict:
    """Run the named cases (default: all) and assemble the JSON payload.

    ``engine`` selects the backend to benchmark (``REPRO_ENGINE``
    overrides, then ``--engine``/this argument, else ``classic``) —
    backends are bit-identical, so per-case records/events match across
    engines and only the wall clock moves.
    """
    names = list(cases) if cases else sorted(PERF_CASES)
    unknown = [n for n in names if n not in PERF_CASES]
    if unknown:
        raise KeyError(f"unknown perf cases {unknown}; "
                       f"available: {sorted(PERF_CASES)}")
    engine = resolve_engine(engine)
    results: Dict[str, Dict] = {}
    for name in names:
        spec = replace(PERF_CASES[name], engine=engine)
        if smoke:
            spec = replace(spec, n_records=SMOKE_RECORDS)
        if progress:
            print(f"[perf] {name}: {spec.label()} x{repeat}...",
                  file=sys.stderr)
        results[name] = run_case(spec, repeat=repeat)
        if progress:
            r = results[name]
            print(f"[perf] {name}: {r['records_per_s']:,.0f} records/s, "
                  f"{r['events_per_s']:,.0f} events/s "
                  f"(best of {repeat}: {r['best_wall_s']:.3f}s)",
                  file=sys.stderr)
    from .store import code_fingerprint
    return {
        "schema": SCHEMA_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "fingerprint": code_fingerprint()[:16],
        "smoke": smoke,
        "engine": engine,
        "cases": results,
    }


def write_payload(payload: Dict, path: Union[str, Path] = DEFAULT_OUTPUT) -> Path:
    """Persist a suite payload (pretty, sorted keys) and return the path."""
    out = Path(path)
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return out


def diff_payloads(base: Dict, fresh: Dict) -> str:
    """Markdown trend table comparing two suite payloads (CI step summary).

    Informational only — wall-clock noise on shared runners makes this a
    trend signal, not a gate.  Cases present in only one payload show
    ``n/a``; a smoke/full or fingerprint mismatch is called out under the
    table because records/s values are then not directly comparable.
    """
    b_engine = base.get("engine", "classic")
    f_engine = fresh.get("engine", "classic")
    cross_engine = b_engine != f_engine
    speedup_head = (f" {b_engine}→{f_engine} ×" if cross_engine
                    else " ev/s ×")
    lines = [
        "| case | base rec/s | fresh rec/s | Δ rec/s | base ev/s "
        f"| fresh ev/s |{speedup_head} |",
        "|---|---:|---:|---:|---:|---:|---:|",
    ]
    names = sorted(set(base.get("cases", {})) | set(fresh.get("cases", {})))
    for name in names:
        b = base.get("cases", {}).get(name)
        f = fresh.get("cases", {}).get(name)
        if b is None or f is None:
            cells = ["n/a" if b is None else f"{b['records_per_s']:,.0f}",
                     "n/a" if f is None else f"{f['records_per_s']:,.0f}",
                     "n/a",
                     "n/a" if b is None else f"{b['events_per_s']:,.0f}",
                     "n/a" if f is None else f"{f['events_per_s']:,.0f}",
                     "n/a"]
        else:
            b_rec, f_rec = b["records_per_s"], f["records_per_s"]
            delta = (f_rec - b_rec) / b_rec * 100 if b_rec else 0.0
            b_ev, f_ev = b["events_per_s"], f["events_per_s"]
            ratio = f_ev / b_ev if b_ev else 0.0
            cells = [f"{b_rec:,.0f}", f"{f_rec:,.0f}", f"{delta:+.1f}%",
                     f"{b_ev:,.0f}", f"{f_ev:,.0f}", f"{ratio:.2f}x"]
        lines.append("| " + " | ".join([name] + cells) + " |")
    notes = []
    if cross_engine:
        notes.append(f"cross-engine comparison: base={b_engine}, "
                     f"fresh={f_engine} (backends are bit-identical; the "
                     "× column is the engine speedup)")
    if base.get("smoke") != fresh.get("smoke"):
        notes.append("payloads mix smoke and full-size traces — absolute "
                     "numbers are not comparable")
    if base.get("fingerprint") != fresh.get("fingerprint"):
        notes.append(f"code fingerprint changed "
                     f"({base.get('fingerprint')} → "
                     f"{fresh.get('fingerprint')})")
    if base.get("python") != fresh.get("python"):
        notes.append(f"python changed ({base.get('python')} → "
                     f"{fresh.get('python')})")
    text = "\n".join(lines)
    if notes:
        text += "\n\n" + "\n".join(f"> note: {n}" for n in notes)
    return text


def format_payload(payload: Dict) -> str:
    """Human-readable table of one suite payload."""
    from ..analysis import format_table
    rows = []
    for name, case in payload["cases"].items():
        rows.append([
            name,
            f"{case['records']}",
            f"{case['events']}",
            f"{case['best_wall_s']:.3f}",
            f"{case['records_per_s']:,.0f}",
            f"{case['events_per_s']:,.0f}",
        ])
    header = ["case", "records", "events", "best wall (s)",
              "records/s", "events/s"]
    title = (f"simulation-kernel throughput (python {payload['python']}, "
             f"engine {payload.get('engine', 'classic')}, "
             f"best of {next(iter(payload['cases'].values()))['repeat']}"
             f"{', smoke' if payload.get('smoke') else ''})")
    return title + "\n" + format_table(header, rows)
