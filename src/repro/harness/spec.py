"""The unit of work for the sweep engine: one simulation point.

Every paper figure is a sweep over (workload, policy, core count,
prefetch); :class:`ExperimentSpec` captures one such point as a frozen,
hashable, picklable value.  The runner executes specs (possibly in a
worker pool), the store content-addresses them, and the legacy
``run_multicopy`` / ``run_mix`` helpers are thin wrappers that build a
spec and hand it to :func:`repro.harness.runner.run`.

A spec fully determines its result: traces are generated from
``(workload, suite, seed, n_records)``, the machine from
``(preset, n_cores)``, and the simulator is deterministic, so equal specs
produce byte-identical ``SimResult`` JSON in any process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional, Sequence

from ..sim.config import SystemConfig
from ..sim.stats import SimResult

#: SystemConfig presets a spec may name (kept as names so specs stay
#: flat/hashable; add an entry here to expose a new machine).
CONFIG_PRESETS = {
    "default": SystemConfig.default,
    "paper": SystemConfig.paper,
    "tiny": SystemConfig.tiny,
}

#: Bump when spec semantics change in a way that invalidates stored keys.
#: v2: ``engine`` backend name joined the spec (participates in the
#: store fingerprint even though backends are bit-identical — a cached
#: result records exactly which engine produced it).
SPEC_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation point (frozen — safe as dict key and across pickle)."""

    workload: str                 # SPEC/GAP name; "" for mixed workloads
    policy: str
    n_cores: int = 4
    prefetch: bool = True
    suite: str = "spec"           # "spec" | "gap" | "serve" | "mix"
    n_records: int = 6000         # measured records per core
    seed: int = 3
    collect_deltas: bool = False
    mix_id: Optional[int] = None  # set iff suite == "mix"
    preset: str = "default"       # CONFIG_PRESETS key
    engine: str = "classic"       # repro.sim.backends name (bit-identical)

    def __post_init__(self) -> None:
        if self.suite == "mix":
            if self.mix_id is None:
                raise ValueError("mix specs need mix_id")
        elif self.suite in ("spec", "gap", "serve"):
            if not self.workload:
                raise ValueError(f"{self.suite} specs need a workload name")
            if self.mix_id is not None:
                raise ValueError("mix_id only applies to suite='mix'")
        else:
            raise ValueError(f"unknown suite {self.suite!r}")
        if self.preset not in CONFIG_PRESETS:
            raise ValueError(
                f"unknown preset {self.preset!r}; "
                f"available: {sorted(CONFIG_PRESETS)}")
        if self.n_cores < 1 or self.n_records < 1:
            raise ValueError("n_cores and n_records must be >= 1")
        if not self.engine or not isinstance(self.engine, str):
            raise ValueError("engine must be a non-empty backend name")

    # -- constructors ---------------------------------------------------
    @classmethod
    def multicopy(cls, workload: str, policy: str, n_cores: int = 4,
                  prefetch: bool = True, suite: str = "spec",
                  n_records: Optional[int] = None, seed: int = 3,
                  collect_deltas: bool = False,
                  preset: str = "default",
                  engine: str = "classic") -> "ExperimentSpec":
        """Multi-copy workload point (Figs. 3, 7-9, 11-14, Tables X-XI)."""
        from .scale import get_scale
        return cls(workload=workload, policy=policy, n_cores=n_cores,
                   prefetch=prefetch, suite=suite,
                   n_records=(get_scale().records if n_records is None
                              else n_records),
                   seed=seed, collect_deltas=collect_deltas, preset=preset,
                   engine=engine)

    @classmethod
    def single(cls, workload: str, policy: str = "lru",
               prefetch: bool = False, suite: str = "spec",
               n_records: Optional[int] = None, seed: int = 3,
               collect_deltas: bool = False) -> "ExperimentSpec":
        """Single-core point (Fig. 5, Tables III and VIII)."""
        return cls.multicopy(workload, policy, n_cores=1, prefetch=prefetch,
                             suite=suite, n_records=n_records, seed=seed,
                             collect_deltas=collect_deltas)

    @classmethod
    def mix(cls, mix_id: int, policy: str, n_cores: int = 4,
            prefetch: bool = True, n_records: Optional[int] = None,
            seed: int = 3, engine: str = "classic") -> "ExperimentSpec":
        """Fig. 10 mixed-workload point."""
        from .scale import get_scale
        return cls(workload="", policy=policy, n_cores=n_cores,
                   prefetch=prefetch, suite="mix",
                   n_records=(get_scale().records if n_records is None
                              else n_records),
                   seed=seed, mix_id=mix_id, engine=engine)

    # -- identity -------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentSpec":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        return cls(**data)

    def canonical_json(self) -> str:
        """Stable textual identity (sorted keys, compact separators)."""
        payload = {"spec_schema": SPEC_SCHEMA_VERSION, **self.to_dict()}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def key(self) -> str:
        """Content hash of the spec — the store's addressing unit."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        name = f"mix{self.mix_id}" if self.suite == "mix" else self.workload
        pf = "pf" if self.prefetch else "nopf"
        return f"{name}/{self.policy}/{self.n_cores}c/{pf}"

    def cost_units(self) -> int:
        """Rough work estimate (records x cores) — the supervisor scales
        per-point watchdog deadlines by this, so a 16-core full-length
        point gets proportionally more wall-clock than a smoke point."""
        return self.n_cores * self.n_records

    # -- execution ------------------------------------------------------
    def build_config(self) -> SystemConfig:
        return CONFIG_PRESETS[self.preset](self.n_cores)

    def build_traces(self) -> List[Sequence]:
        """Per-core record sequences (2x n_records: warmup + measured)."""
        from ..workloads.mixes import mixed_workload_traces, multicopy_traces
        if self.suite == "mix":
            traces = mixed_workload_traces(self.n_cores, self.mix_id,
                                           2 * self.n_records, seed=self.seed)
        else:
            traces = multicopy_traces(self.workload, self.n_cores,
                                      2 * self.n_records, seed=self.seed,
                                      suite=self.suite)
        return [t.records for t in traces]

    def execute(self, obs: Optional[object] = None,
                notes: Optional[Dict] = None) -> SimResult:
        """Run the simulation for this point (no caching — see the runner).

        ``obs`` is an optional :class:`~repro.obs.ObsConfig`; when omitted
        it is resolved from ``REPRO_METRICS_INTERVAL`` / ``REPRO_TRACE`` /
        ``REPRO_OBS_DIR`` so pool workers inherit observability settings
        through the environment, mirroring ``REPRO_SANITIZE``.

        The engine backend is ``self.engine`` unless ``REPRO_ENGINE``
        overrides it (the CI cross-backend job re-executes fixture specs
        under another backend this way; backends are bit-identical, so
        the override cannot change the result).

        When checkpointing is enabled (``REPRO_CKPT_DIR`` — see
        :mod:`repro.harness.preempt`) a valid save-state for this spec is
        restored and *resumed* instead of cold-starting, and fresh runs
        carry a :class:`~repro.harness.preempt.CheckpointPolicy` so they
        can be preempted mid-flight.  A refused (corrupt / version-skewed)
        state is quarantined and the point cold-starts: never a wrong
        answer.  ``notes``, when given, collects ``resumed`` /
        ``quarantined`` annotations for the caller's incident log.
        """
        from ..sim.backends import build_system
        from . import preempt
        if obs is None:
            from ..obs.schema import obs_from_env
            obs = obs_from_env()
        if obs is not None and obs.enabled and obs.tag == "run":
            obs = obs.with_tag(self.label())
        ckpt = preempt.checkpoint_from_env()
        policy = None
        if ckpt is not None:
            from .store import code_fingerprint
            key = self.key()
            policy = preempt.CheckpointPolicy.for_spec(
                ckpt, key, code_fingerprint())
            system, note = preempt.try_restore(
                policy.path, spec_key=key, fingerprint=policy.fingerprint)
            if note is not None and notes is not None:
                notes["quarantined"] = note
            if system is not None:
                # The policy pickled inside the save-state (it rides the
                # watcher mux); resume() rearms it — re-installing would
                # reset every watcher countdown and break determinism.
                if notes is not None:
                    notes["resumed"] = system.engine.events_processed
                result = system.resume()
                preempt.clear_state(policy.path)
                return result
        traces = self.build_traces()
        n = min(len(t) for t in traces)
        system = build_system(self.build_config(), traces,
                              engine=self.engine, llc_policy=self.policy,
                              prefetch=self.prefetch, seed=self.seed,
                              measure_records=n // 2, warmup_records=n // 2,
                              collect_deltas=self.collect_deltas, obs=obs,
                              checkpoint=policy)
        result = system.run()
        if policy is not None:
            preempt.clear_state(policy.path)
        return result
