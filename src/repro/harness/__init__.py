"""Experiment orchestration: figure sweeps and the standalone cache sim."""

from .cachesim import CacheSimResult, simulate_cache
from .replication import pairwise_verdicts, replicated_speedups
from .experiment import (
    BENCH_MIXES,
    BENCH_RECORDS,
    BENCH_WORKLOADS,
    NOPREFETCH_SCHEMES,
    PREFETCH_SCHEMES,
    bench_gap_workloads,
    bench_spec_workloads,
    clear_cache,
    run_mix,
    run_multicopy,
    run_single,
    scaling_sweep,
    speedup_sweep,
)

__all__ = [
    "CacheSimResult", "simulate_cache",
    "pairwise_verdicts", "replicated_speedups",
    "BENCH_MIXES", "BENCH_RECORDS", "BENCH_WORKLOADS",
    "NOPREFETCH_SCHEMES", "PREFETCH_SCHEMES",
    "bench_gap_workloads", "bench_spec_workloads", "clear_cache",
    "run_mix", "run_multicopy", "run_single", "scaling_sweep",
    "speedup_sweep",
]
