"""Experiment orchestration: specs, the parallel runner, the persistent
result store, figure sweeps, and the standalone cache sim."""

from .cachesim import CacheSimResult, simulate_cache
from .campaign import (
    Campaign,
    CampaignError,
    CampaignGrid,
    apply_slice,
    available_campaigns,
    build_campaign_report,
    campaign_status,
    find_campaign,
    load_campaign,
    parse_campaign,
    render_campaign_markdown,
)
from .replication import pairwise_verdicts, replicated_speedups
from .scale import BenchScale, get_scale, scale_override, set_scale
from .spec import ExperimentSpec
from .store import (FsckReport, ResultStore, code_fingerprint,
                    default_store, set_default_store)
from .supervise import (
    FailedResult,
    RetryPolicy,
    SupervisedPool,
    SweepFailedError,
    SweepInterrupted,
    SweepManifest,
    SweepSupervisor,
    active_supervisor,
    compute_timeout,
    format_failure_table,
    supervised_sweep,
)
from .runner import (
    SweepStats,
    resolve_workers,
    run,
    run_many,
    session_stats,
)
from .experiment import (
    NOPREFETCH_SCHEMES,
    PREFETCH_SCHEMES,
    bench_gap_workloads,
    bench_spec_workloads,
    clear_cache,
    run_mix,
    run_multicopy,
    run_single,
    scaling_sweep,
    speedup_sweep,
)

_LEGACY_SCALE_ATTRS = ("BENCH_RECORDS", "BENCH_WORKLOADS", "BENCH_MIXES")


def __getattr__(name: str):
    """Legacy scale constants resolve lazily from the active BenchScale."""
    if name in _LEGACY_SCALE_ATTRS:
        from . import experiment
        return getattr(experiment, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CacheSimResult", "simulate_cache",
    "Campaign", "CampaignError", "CampaignGrid", "apply_slice",
    "available_campaigns", "build_campaign_report", "campaign_status",
    "find_campaign", "load_campaign", "parse_campaign",
    "render_campaign_markdown",
    "pairwise_verdicts", "replicated_speedups",
    "BenchScale", "get_scale", "set_scale", "scale_override",
    "ExperimentSpec",
    "FsckReport", "ResultStore", "code_fingerprint", "default_store",
    "set_default_store",
    "FailedResult", "RetryPolicy", "SupervisedPool", "SweepFailedError",
    "SweepInterrupted", "SweepManifest", "SweepSupervisor",
    "active_supervisor", "compute_timeout", "format_failure_table",
    "supervised_sweep",
    "SweepStats", "resolve_workers", "run", "run_many", "session_stats",
    "BENCH_MIXES", "BENCH_RECORDS", "BENCH_WORKLOADS",
    "NOPREFETCH_SCHEMES", "PREFETCH_SCHEMES",
    "bench_gap_workloads", "bench_spec_workloads", "clear_cache",
    "run_mix", "run_multicopy", "run_single", "scaling_sweep",
    "speedup_sweep",
]
