"""Checkpoint cadence, preemption protocol, and resource guards.

:mod:`repro.sim.savestate` defines the pure bytes-level save-state
format; this module owns everything around it that touches the world —
files, environment, wall clocks, signals, and processes:

* :class:`CheckpointPolicy` — an engine watcher that writes save-states
  on an event and/or wall-clock cadence and turns a latched preempt
  request into a clean :class:`PreemptedError` at the next watcher
  boundary (the only point where a snapshot is phase-exact).  The
  policy rides the watcher mux, pickles *with* the system (so a
  restored run keeps the exact trampoline countdowns), and installs
  last so every other observer is settled when it fires.
* The **preempt latch** — a process-local flag set by
  :func:`request_preempt`, the worker ``SIGTERM`` handler, or the chaos
  ``preempt`` fault, and consumed by the policy's tick.  Workers only
  install the handler while executing a checkpointed task; idle
  persistent workers keep ``SIG_DFL`` so pool teardown stays instant.
* :func:`save_state` / :func:`try_restore` / :func:`clear_state` —
  atomic (tempfile + rename) save-state I/O under a content-addressed
  ``<dir>/<key[:2]>/<key>.ckpt.gz`` layout.  A stale or corrupt state is
  quarantined (numbered suffix, mirroring the result store) and the
  caller cold-starts: a bad save-state may cost time, never a wrong
  answer.
* :func:`try_preempt` — the parent-side half of the protocol: SIGTERM a
  worker and wait a grace period for its final payload (which may be a
  preempted report *or* a normal result racing the signal) before the
  caller escalates to SIGKILL.
* :class:`ResourceGuards` — optional RSS budget (``/proc/<pid>/status``)
  and disk-free floor (``statvfs``) checks the pools run beside the
  watchdog, so memory leaks and full disks preempt work instead of
  losing it to the OOM killer.

Environment (all read lazily, per call):

``REPRO_CKPT_DIR``
    Save-state directory; setting it is what enables checkpointing.
``REPRO_CKPT_EVENTS`` / ``REPRO_CKPT_SECS``
    Periodic cadence (simulated events / wall seconds).  Unset: states
    are written only on preemption, at the default tick granularity.
``REPRO_PREEMPT_GRACE``
    Parent-side seconds to wait for a preempted worker's payload.
``REPRO_RSS_BUDGET_MB`` / ``REPRO_DISK_FLOOR_MB``
    Resource guard thresholds (disabled when unset).
"""

from __future__ import annotations

import logging
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

log = logging.getLogger(__name__)

CKPT_DIR_ENV = "REPRO_CKPT_DIR"
CKPT_EVENTS_ENV = "REPRO_CKPT_EVENTS"
CKPT_SECS_ENV = "REPRO_CKPT_SECS"
GRACE_ENV = "REPRO_PREEMPT_GRACE"
RSS_BUDGET_ENV = "REPRO_RSS_BUDGET_MB"
DISK_FLOOR_ENV = "REPRO_DISK_FLOOR_MB"

#: synthetic error name a preempted worker reports (transient: the
#: supervisor requeues the point with its save-state attached)
PREEMPT_ERROR = "WorkerPreempted"

#: watcher cadence when only wall-clock (or only preempt-on-demand)
#: checkpointing is configured — frequent enough that a SIGTERM turns
#: into a save within a fraction of a second, rare enough to be free
DEFAULT_TICK_EVENTS = 20_000

DEFAULT_GRACE_SECS = 8.0


class PreemptedError(RuntimeError):
    """The run was preempted cleanly; ``path`` resumes it (may be None
    if the save itself failed — the retry then cold-starts)."""

    def __init__(self, path: Optional[str], events: int) -> None:
        where = path if path else "<save failed>"
        super().__init__(
            f"preempted at {events} events; save-state: {where}")
        self.path = path
        self.events = events


# ----------------------------------------------------------------------
# The preempt latch
# ----------------------------------------------------------------------
#: Process-local preempt request.  A one-element list mutated in place
#: (not a rebound module global): signal handlers, the chaos injector,
#: and the policy tick share it without import-order hazards.
_PREEMPT = [False]


def request_preempt() -> None:
    """Ask the running simulation to checkpoint and stop at the next
    watcher boundary (no-op if no checkpoint policy is installed)."""
    _PREEMPT[0] = True


def clear_preempt() -> None:
    """Drop any pending request (pools call this at task start so a
    late signal for the *previous* task cannot leak into the next)."""
    _PREEMPT[0] = False


def preempt_requested() -> bool:
    return _PREEMPT[0]


def _signal_preempt(signum: int, frame: Any) -> None:
    _PREEMPT[0] = True


def install_preempt_handler() -> Any:
    """Route SIGTERM to the latch; returns the previous handler.

    Installed by workers only for the duration of a checkpointed task —
    an idle worker keeps default signal behaviour so ``terminate()``
    still kills it instantly.
    """
    try:
        return signal.signal(signal.SIGTERM, _signal_preempt)
    except (ValueError, OSError):   # non-main thread / exotic embedding
        return None


def restore_preempt_handler(previous: Any) -> None:
    if previous is None:
        return
    try:
        signal.signal(signal.SIGTERM, previous)
    except (ValueError, OSError):
        pass


def chaos_preempt(env: Optional[Dict[str, str]] = None) -> bool:
    """Latch a preempt request for the chaos ``preempt`` fault.

    No-ops (returns False) when checkpointing is disabled: without a
    policy nothing would consume the latch, and the fault is meant to
    exercise the save/resume path, not to poison later tasks.
    """
    if checkpoint_from_env(env) is None:
        return False
    request_preempt()
    return True


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckpointConfig:
    """Parsed ``REPRO_CKPT_*`` settings."""

    dir: str
    every_events: Optional[int] = None
    every_secs: Optional[float] = None


def checkpoint_from_env(
        env: Optional[Dict[str, str]] = None) -> Optional[CheckpointConfig]:
    """The active checkpoint config, or ``None`` when disabled.

    ``REPRO_CKPT_DIR`` being set (non-empty) is the enable switch; the
    cadence variables refine it.  Read per call, like the other worker
    env accessors, so pool workers pick it up from shipped snapshots.
    """
    e: Dict[str, str] = dict(os.environ) if env is None else env
    root = e.get(CKPT_DIR_ENV, "").strip()
    if not root:
        return None
    every_events = None
    raw = e.get(CKPT_EVENTS_ENV, "").strip()
    if raw:
        try:
            every_events = max(1, int(raw))
        except ValueError:
            log.warning("ignoring non-integer %s=%r", CKPT_EVENTS_ENV, raw)
    every_secs = None
    raw = e.get(CKPT_SECS_ENV, "").strip()
    if raw:
        try:
            every_secs = float(raw)
            if every_secs <= 0:
                every_secs = None
        except ValueError:
            log.warning("ignoring non-numeric %s=%r", CKPT_SECS_ENV, raw)
    return CheckpointConfig(dir=root, every_events=every_events,
                            every_secs=every_secs)


def preempt_grace(env: Optional[Dict[str, str]] = None) -> float:
    """Parent-side wait for a preempted worker's payload (seconds)."""
    e: Dict[str, str] = dict(os.environ) if env is None else env
    raw = e.get(GRACE_ENV, "").strip()
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            log.warning("ignoring non-numeric %s=%r", GRACE_ENV, raw)
    return DEFAULT_GRACE_SECS


def state_path(root: Union[str, Path], key: str) -> Path:
    """Content-addressed save-state location (mirrors the result store)."""
    return Path(root) / key[:2] / f"{key}.ckpt.gz"


# ----------------------------------------------------------------------
# The checkpoint policy (an engine watcher)
# ----------------------------------------------------------------------
class CheckpointPolicy:
    """Cadence-driven save-state writer + preempt-request consumer.

    Lives on the engine's watcher mux; :meth:`_tick` runs at watcher
    boundaries where both engines have settled their counters, which is
    what makes the saved state resume phase-exact.  The policy pickles
    inside the save-state (it is registered in ``engine._watchers`` and
    on ``System.checkpoint``); only the process-local wall-clock
    deadline is stripped and re-armed on resume.
    """

    __slots__ = ("path", "spec_key", "fingerprint", "every_events",
                 "every_secs", "system", "saves", "_deadline", "_installed")

    def __init__(self, path: Union[str, Path], spec_key: str,
                 fingerprint: str, every_events: Optional[int] = None,
                 every_secs: Optional[float] = None) -> None:
        self.path = str(path)
        self.spec_key = spec_key
        self.fingerprint = fingerprint
        self.every_events = every_events
        self.every_secs = every_secs
        self.system: Optional[Any] = None
        self.saves = 0
        self._deadline: Optional[float] = None
        self._installed = False

    @classmethod
    def for_spec(cls, cfg: CheckpointConfig, spec_key: str,
                 fingerprint: str) -> "CheckpointPolicy":
        return cls(path=state_path(cfg.dir, spec_key), spec_key=spec_key,
                   fingerprint=fingerprint, every_events=cfg.every_events,
                   every_secs=cfg.every_secs)

    @property
    def tick_interval(self) -> int:
        return (self.every_events if self.every_events
                else DEFAULT_TICK_EVENTS)

    # -- lifecycle ------------------------------------------------------
    def install(self, system: Any) -> None:
        self.system = system
        system.engine.add_watcher(self._tick, self.tick_interval)
        self._installed = True
        self.rearm()

    def rearm(self) -> None:
        """(Re-)arm the process-local wall-clock cadence."""
        self._deadline = (time.monotonic() + self.every_secs
                          if self.every_secs else None)

    def uninstall(self) -> None:
        if self._installed and self.system is not None:
            self.system.engine.remove_watcher(self._tick)
            self._installed = False

    # -- the watcher ----------------------------------------------------
    def _tick(self) -> None:
        if _PREEMPT[0]:
            _PREEMPT[0] = False
            path = save_state(self)
            raise PreemptedError(path, self.system.engine.events_processed)
        if self.every_events is not None:
            save_state(self)
            if self.every_secs:
                self._deadline = time.monotonic() + self.every_secs
        elif self._deadline is not None and time.monotonic() >= self._deadline:
            save_state(self)
            self._deadline = time.monotonic() + self.every_secs

    # -- pickling -------------------------------------------------------
    def __getstate__(self):
        state = {slot: getattr(self, slot)
                 for slot in CheckpointPolicy.__slots__}
        state["_deadline"] = None     # wall clock is process-local
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)


# ----------------------------------------------------------------------
# Save-state I/O
# ----------------------------------------------------------------------
def save_state(policy: CheckpointPolicy) -> Optional[str]:
    """Atomically write the policy's system to its save-state path.

    Returns the path, or ``None`` when the write failed — checkpointing
    is an availability feature, so I/O trouble degrades to "no state"
    (logged) rather than killing a healthy simulation.
    """
    from ..sim.savestate import encode_savestate
    blob = encode_savestate(policy.system, spec_key=policy.spec_key,
                            fingerprint=policy.fingerprint)
    path = Path(policy.path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError as exc:
        log.warning("save-state write failed for %s: %s", path, exc)
        return None
    policy.saves += 1
    _maybe_chaos_corrupt(policy.spec_key, path)
    return str(path)


def _maybe_chaos_corrupt(key: str, path: Path) -> bool:
    """Chaos ``ckpt-corrupt``: truncate the state we just wrote.

    Fires on every attempt for selected points (like the store's
    ``corrupt`` fault): resume must quarantine the torn file and
    cold-start, converging to correct results regardless.
    """
    from ..checks.chaos import chaos_from_env, should_inject
    cfg = chaos_from_env()
    if cfg is None or not should_inject(cfg, "ckpt-corrupt", key):
        return False
    try:
        data = path.read_bytes()
        path.write_bytes(data[:max(1, len(data) // 2)])
    except OSError:
        return False
    return True


def quarantine_state(path: Path, reason: str = "") -> Optional[Path]:
    """Move a refused save-state aside (never raises, like the store)."""
    try:
        qdir = path.parent / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = qdir / f"{path.name}.{suffix}"
        os.replace(path, target)
    except OSError as exc:
        log.warning("could not quarantine save-state %s: %s", path, exc)
        return None
    log.warning("quarantined save-state %s (%s)", path.name,
                reason or "refused")
    return target


def try_restore(path: Union[str, Path], *, spec_key: str,
                fingerprint: str) -> Tuple[Optional[Any], Optional[str]]:
    """``(system, note)``: the restored system ready to ``resume()``.

    ``(None, None)`` means no state exists (normal cold start);
    ``(None, reason)`` means a state existed but was refused — it has
    been quarantined and the caller must cold-start, recording the
    reason as an incident.
    """
    from ..sim.savestate import SavestateError, decode_savestate
    p = Path(path)
    try:
        blob = p.read_bytes()
    except FileNotFoundError:
        return None, None
    except OSError as exc:
        return None, f"unreadable save-state: {exc}"
    try:
        system = decode_savestate(blob, spec_key=spec_key,
                                  fingerprint=fingerprint)
    except SavestateError as exc:
        reason = f"{type(exc).__name__}: {exc}"
        quarantine_state(p, reason)
        return None, reason
    return system, None


def clear_state(path: Union[str, Path]) -> None:
    """Delete a save-state (after its point completed)."""
    try:
        Path(path).unlink()
    except FileNotFoundError:
        pass
    except OSError as exc:
        log.warning("could not remove save-state %s: %s", path, exc)


# ----------------------------------------------------------------------
# Parent-side preemption
# ----------------------------------------------------------------------
def try_preempt(proc: Any, conn: Any,
                grace: Optional[float] = None) -> Optional[Dict[str, Any]]:
    """SIGTERM ``proc`` and wait up to ``grace`` seconds for a payload.

    The payload may be the preempted report *or* a normal result that
    raced the signal — the caller routes whatever arrives through its
    usual reap path.  ``None`` means the worker neither answered nor
    died in time; the caller escalates (SIGKILL + its original
    classification).
    """
    if grace is None:
        grace = preempt_grace()
    try:
        proc.terminate()
    except (OSError, AttributeError):
        return None
    deadline = time.monotonic() + grace
    while time.monotonic() < deadline:
        try:
            if conn.poll(0.05):
                return conn.recv()
        except (EOFError, OSError):
            return None
        if not proc.is_alive():
            try:
                if conn.poll(0):
                    return conn.recv()
            except (EOFError, OSError):
                pass
            return None
    return None


# ----------------------------------------------------------------------
# Resource guards
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResourceGuards:
    """Per-worker RSS budget and global disk-free floor (MiB)."""

    rss_budget_mb: Optional[float] = None
    disk_floor_mb: Optional[float] = None

    @property
    def enabled(self) -> bool:
        return (self.rss_budget_mb is not None
                or self.disk_floor_mb is not None)


def guards_from_env(
        env: Optional[Dict[str, str]] = None) -> ResourceGuards:
    """Parse ``REPRO_RSS_BUDGET_MB`` / ``REPRO_DISK_FLOOR_MB``."""
    e: Dict[str, str] = dict(os.environ) if env is None else env
    values: Dict[str, Optional[float]] = {}
    for field_name, var in (("rss_budget_mb", RSS_BUDGET_ENV),
                            ("disk_floor_mb", DISK_FLOOR_ENV)):
        value = None
        raw = e.get(var, "").strip()
        if raw:
            try:
                value = float(raw)
                if value <= 0:
                    value = None
            except ValueError:
                log.warning("ignoring non-numeric %s=%r", var, raw)
        values[field_name] = value
    return ResourceGuards(**values)


def rss_mb(pid: int) -> Optional[float]:
    """Resident set size of ``pid`` in MiB (Linux ``/proc``; else None)."""
    try:
        with open(f"/proc/{pid}/status", "r") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


def disk_free_mb(path: Union[str, Path]) -> Optional[float]:
    """Free space (MiB) on the filesystem holding ``path``."""
    try:
        st = os.statvfs(str(path))
    except (OSError, AttributeError):
        return None
    return st.f_bavail * st.f_frsize / (1024.0 * 1024.0)


def guard_breach(guards: ResourceGuards, pid: int,
                 disk_path: Union[str, Path, None]) -> Optional[str]:
    """Human-readable breach description, or ``None`` when healthy."""
    if guards.rss_budget_mb is not None:
        rss = rss_mb(pid)
        if rss is not None and rss > guards.rss_budget_mb:
            return (f"worker rss {rss:.0f} MiB over the "
                    f"{guards.rss_budget_mb:.0f} MiB budget")
    if guards.disk_floor_mb is not None and disk_path is not None:
        free = disk_free_mb(disk_path)
        if free is not None and free < guards.disk_floor_mb:
            return (f"disk free {free:.0f} MiB under the "
                    f"{guards.disk_floor_mb:.0f} MiB floor")
    return None
