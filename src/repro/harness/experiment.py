"""Experiment drivers shared by benchmarks and examples.

Each paper figure is a sweep over (workload, policy, core count, prefetch);
this module provides seeded, cached runners for those sweeps so multiple
benchmarks in one pytest session reuse each other's LRU baselines.

Scaling knobs (environment variables, read once at import):

* ``REPRO_BENCH_RECORDS`` — measured records per core (default 6000).
* ``REPRO_BENCH_WORKLOADS`` — how many SPEC workloads figure sweeps use
  (default 10; ``30`` reproduces the full Table VIII set).
* ``REPRO_BENCH_MIXES`` — number of Fig. 10 mixed workloads (default 10;
  the paper runs 100).

Every run still covers every *scheme*; the knobs only bound workload count
and trace length so the suite finishes at Python speed.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import geometric_mean, normalized_ipc, total_ipc
from ..sim.config import SystemConfig
from ..sim.stats import SimResult
from ..sim.system import System
from ..workloads.gap import gap_workload_names
from ..workloads.mixes import mixed_workload_traces
from ..workloads.spec_like import spec_names, spec_trace

#: schemes compared in the with-prefetch figures (Figs. 7-10)
PREFETCH_SCHEMES = ["lru", "shippp", "hawkeye", "glider", "mcare", "care"]
#: schemes in the no-prefetch scaling figures (Figs. 13-14 add Mockingjay)
NOPREFETCH_SCHEMES = ["lru", "shippp", "hawkeye", "glider", "mockingjay",
                      "mcare", "care"]

BENCH_RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "6000"))
BENCH_WORKLOADS = int(os.environ.get("REPRO_BENCH_WORKLOADS", "10"))
BENCH_MIXES = int(os.environ.get("REPRO_BENCH_MIXES", "10"))

#: representative SPEC subset used when BENCH_WORKLOADS < 30 — spans the
#: pattern classes (chase / stream / stencil / scan / random / hot).
_REPRESENTATIVE = [
    "429.mcf", "462.libquantum", "482.sphinx3", "450.soplex",
    "483.xalancbmk", "437.leslie3d", "470.lbm", "605.mcf_s",
    "621.wrf_s", "620.omnetpp_s", "473.astar", "410.bwaves",
    "603.bwaves_s", "602.gcc_s", "403.gcc", "436.cactusADM",
]

_result_cache: Dict[Tuple, SimResult] = {}


def bench_spec_workloads(count: Optional[int] = None) -> List[str]:
    """The SPEC workloads a figure sweep covers at the current scale."""
    n = BENCH_WORKLOADS if count is None else count
    if n >= 30:
        return spec_names()
    return _REPRESENTATIVE[:max(1, n)]


def bench_gap_workloads(count: Optional[int] = None) -> List[str]:
    """A spread of GAP workloads covering different kernels.

    The name list is kernel-major (bc-or, bc-tw, ..., sssp-ur); taking a
    strided sample keeps algorithm diversity at small counts instead of
    returning N copies of the same kernel.
    """
    names = gap_workload_names()
    if count is None:
        count = min(len(names), max(3, BENCH_WORKLOADS))
    count = max(1, min(count, len(names)))
    stride = len(names) / count
    picked = []
    for i in range(count):
        name = names[int(i * stride)]
        if name not in picked:
            picked.append(name)
    return picked


def clear_cache() -> None:
    _result_cache.clear()


def _run(key: Tuple, traces: Sequence, cfg: SystemConfig, policy: str,
         prefetch: bool, seed: int, collect_deltas: bool) -> SimResult:
    if key in _result_cache:
        return _result_cache[key]
    n = min(len(t) for t in traces)
    system = System(cfg, traces, llc_policy=policy, prefetch=prefetch,
                    seed=seed, measure_records=n // 2, warmup_records=n // 2,
                    collect_deltas=collect_deltas)
    result = system.run()
    _result_cache[key] = result
    return result


def run_multicopy(name: str, policy: str, n_cores: int = 4,
                  prefetch: bool = True, suite: str = "spec",
                  n_records: Optional[int] = None, seed: int = 3,
                  collect_deltas: bool = False) -> SimResult:
    """One multi-copy workload run (Figs. 3, 7-9, 11-14, Tables X-XI)."""
    n_records = n_records if n_records is not None else BENCH_RECORDS
    key = ("multicopy", name, policy, n_cores, prefetch, suite, n_records,
           seed, collect_deltas)
    if key in _result_cache:
        return _result_cache[key]
    from ..workloads.mixes import multicopy_traces
    traces = multicopy_traces(name, n_cores, 2 * n_records, seed=seed,
                              suite=suite)
    cfg = SystemConfig.default(n_cores)
    return _run(key, [t.records for t in traces], cfg, policy, prefetch,
                seed, collect_deltas)


def run_single(name: str, policy: str = "lru", prefetch: bool = False,
               suite: str = "spec", n_records: Optional[int] = None,
               seed: int = 3, collect_deltas: bool = False) -> SimResult:
    """Single-core run (Fig. 5, Tables III and VIII)."""
    return run_multicopy(name, policy, n_cores=1, prefetch=prefetch,
                         suite=suite, n_records=n_records, seed=seed,
                         collect_deltas=collect_deltas)


def run_mix(mix_id: int, policy: str, n_cores: int = 4,
            prefetch: bool = True, n_records: Optional[int] = None,
            seed: int = 3) -> SimResult:
    """One Fig. 10 mixed workload run."""
    n_records = n_records if n_records is not None else BENCH_RECORDS
    key = ("mix", mix_id, policy, n_cores, prefetch, n_records, seed)
    if key in _result_cache:
        return _result_cache[key]
    traces = mixed_workload_traces(n_cores, mix_id, 2 * n_records, seed=seed)
    cfg = SystemConfig.default(n_cores)
    return _run(key, [t.records for t in traces], cfg, policy, prefetch,
                seed, False)


def speedup_sweep(workloads: Sequence[str], policies: Sequence[str],
                  n_cores: int = 4, prefetch: bool = True,
                  suite: str = "spec",
                  n_records: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Normalized-IPC table for a figure: rows = workloads (+GEOMEAN)."""
    table: Dict[str, Dict[str, float]] = {}
    per_policy: Dict[str, List[float]] = {p: [] for p in policies}
    for name in workloads:
        base = run_multicopy(name, "lru", n_cores, prefetch, suite, n_records)
        row = {}
        for policy in policies:
            res = (base if policy == "lru" else run_multicopy(
                name, policy, n_cores, prefetch, suite, n_records))
            value = normalized_ipc(res, base)
            row[policy] = value
            per_policy[policy].append(value)
        table[name] = row
    table["GEOMEAN"] = {
        p: geometric_mean(v) for p, v in per_policy.items()
    }
    return table


def scaling_sweep(workloads: Sequence[str], policies: Sequence[str],
                  core_counts: Sequence[int] = (4, 8, 16),
                  prefetch: bool = True, suite: str = "spec",
                  n_records: Optional[int] = None) -> Dict[int, Dict[str, float]]:
    """Figs. 11-14: GM speedup per policy at each core count."""
    out: Dict[int, Dict[str, float]] = {}
    for cores in core_counts:
        table = speedup_sweep(workloads, policies, n_cores=cores,
                              prefetch=prefetch, suite=suite,
                              n_records=n_records)
        out[cores] = table["GEOMEAN"]
    return out
