"""Experiment drivers shared by benchmarks and examples.

Each paper figure is a sweep over (workload, policy, core count, prefetch).
Since the sweep-engine redesign these helpers are thin wrappers over
:mod:`repro.harness.spec` / :mod:`repro.harness.runner`: every call builds
a frozen :class:`~repro.harness.spec.ExperimentSpec` and resolves it
through the in-process memo, the persistent result store, and (for
sweeps) the parallel worker pool.

Scaling knobs are provided by :class:`repro.harness.scale.BenchScale`
(environment variables ``REPRO_BENCH_RECORDS`` / ``REPRO_BENCH_WORKLOADS``
/ ``REPRO_BENCH_MIXES`` still work as defaults; ``set_scale`` /
``scale_override`` change them programmatically).  Worker count comes
from ``workers=`` arguments or ``REPRO_WORKERS``.

Every run still covers every *scheme*; the knobs only bound workload
count and trace length so the suite finishes at Python speed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.metrics import geometric_mean, normalized_ipc
from ..sim.stats import SimResult
from ..workloads.gap import gap_workload_names
from ..workloads.spec_like import spec_names
from .runner import _MEMO, run, run_many
from .scale import get_scale
from .spec import ExperimentSpec

#: schemes compared in the with-prefetch figures (Figs. 7-10)
PREFETCH_SCHEMES = ["lru", "shippp", "hawkeye", "glider", "mcare", "care"]
#: schemes in the no-prefetch scaling figures (Figs. 13-14 add Mockingjay)
NOPREFETCH_SCHEMES = ["lru", "shippp", "hawkeye", "glider", "mockingjay",
                      "mcare", "care"]

#: representative SPEC subset used when the workload knob is < 30 — spans
#: the pattern classes (chase / stream / stencil / scan / random / hot).
_REPRESENTATIVE = [
    "429.mcf", "462.libquantum", "482.sphinx3", "450.soplex",
    "483.xalancbmk", "437.leslie3d", "470.lbm", "605.mcf_s",
    "621.wrf_s", "620.omnetpp_s", "473.astar", "410.bwaves",
    "603.bwaves_s", "602.gcc_s", "403.gcc", "436.cactusADM",
]

#: legacy alias — the runner's in-process memo (spec -> SimResult)
_result_cache = _MEMO

_SCALE_ATTRS = {"BENCH_RECORDS": "records", "BENCH_WORKLOADS": "workloads",
                "BENCH_MIXES": "mixes"}


def __getattr__(name: str):
    """``BENCH_RECORDS`` & friends now resolve lazily from the active
    :class:`~repro.harness.scale.BenchScale` instead of being frozen at
    import time."""
    if name in _SCALE_ATTRS:
        return getattr(get_scale(), _SCALE_ATTRS[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def bench_spec_workloads(count: Optional[int] = None) -> List[str]:
    """The SPEC workloads a figure sweep covers at the current scale."""
    n = get_scale().workloads if count is None else count
    if n >= 30:
        return spec_names()
    return _REPRESENTATIVE[:max(1, n)]


def bench_gap_workloads(count: Optional[int] = None) -> List[str]:
    """A spread of GAP workloads covering different kernels.

    The name list is kernel-major (bc-or, bc-tw, ..., sssp-ur); taking a
    strided sample keeps algorithm diversity at small counts instead of
    returning N copies of the same kernel.
    """
    names = gap_workload_names()
    if count is None:
        count = min(len(names), max(3, get_scale().workloads))
    count = max(1, min(count, len(names)))
    stride = len(names) / count
    picked = []
    for i in range(count):
        name = names[int(i * stride)]
        if name not in picked:
            picked.append(name)
    return picked


def clear_cache() -> None:
    """Drop the in-process memo (the persistent store is untouched)."""
    _result_cache.clear()


def run_multicopy(name: str, policy: str, n_cores: int = 4,
                  prefetch: bool = True, suite: str = "spec",
                  n_records: Optional[int] = None, seed: int = 3,
                  collect_deltas: bool = False) -> SimResult:
    """One multi-copy workload run (Figs. 3, 7-9, 11-14, Tables X-XI)."""
    return run(ExperimentSpec.multicopy(
        name, policy, n_cores=n_cores, prefetch=prefetch, suite=suite,
        n_records=n_records, seed=seed, collect_deltas=collect_deltas))


def run_single(name: str, policy: str = "lru", prefetch: bool = False,
               suite: str = "spec", n_records: Optional[int] = None,
               seed: int = 3, collect_deltas: bool = False) -> SimResult:
    """Single-core run (Fig. 5, Tables III and VIII)."""
    return run_multicopy(name, policy, n_cores=1, prefetch=prefetch,
                         suite=suite, n_records=n_records, seed=seed,
                         collect_deltas=collect_deltas)


def run_mix(mix_id: int, policy: str, n_cores: int = 4,
            prefetch: bool = True, n_records: Optional[int] = None,
            seed: int = 3) -> SimResult:
    """One Fig. 10 mixed workload run."""
    return run(ExperimentSpec.mix(mix_id, policy, n_cores=n_cores,
                                  prefetch=prefetch, n_records=n_records,
                                  seed=seed))


def speedup_sweep(workloads: Sequence[str], policies: Sequence[str],
                  n_cores: int = 4, prefetch: bool = True,
                  suite: str = "spec", n_records: Optional[int] = None,
                  workers: Optional[int] = None,
                  progress=None) -> Dict[str, Dict[str, Optional[float]]]:
    """Normalized-IPC table for a figure: rows = workloads (+GEOMEAN).

    All (workload, policy) points — including the shared LRU baselines —
    are resolved in one :func:`~repro.harness.runner.run_many` call, so
    sweeps parallelize across ``workers`` and reuse the result store.

    Under a supervised sweep a permanently failed point comes back as
    ``None``; its table cells (and any geomean it fed) are ``None`` holes
    rather than aborting the whole figure.
    """
    def point(name: str, policy: str) -> ExperimentSpec:
        return ExperimentSpec.multicopy(name, policy, n_cores=n_cores,
                                        prefetch=prefetch, suite=suite,
                                        n_records=n_records)

    specs = [point(name, policy)
             for name in workloads
             for policy in dict.fromkeys(["lru", *policies])]
    by_spec = dict(zip(specs, run_many(specs, workers=workers,
                                       progress=progress)))

    table: Dict[str, Dict[str, Optional[float]]] = {}
    per_policy: Dict[str, List[float]] = {p: [] for p in policies}
    for name in workloads:
        base = by_spec[point(name, "lru")]
        row: Dict[str, Optional[float]] = {}
        for policy in policies:
            res = by_spec[point(name, policy)]
            if base is None or res is None:
                row[policy] = None
                continue
            value = normalized_ipc(res, base)
            row[policy] = value
            per_policy[policy].append(value)
        table[name] = row
    table["GEOMEAN"] = {
        p: (geometric_mean(v) if v else None)
        for p, v in per_policy.items()
    }
    return table


def scaling_sweep(workloads: Sequence[str], policies: Sequence[str],
                  core_counts: Sequence[int] = (4, 8, 16),
                  prefetch: bool = True, suite: str = "spec",
                  n_records: Optional[int] = None,
                  workers: Optional[int] = None
                  ) -> Dict[int, Dict[str, Optional[float]]]:
    """Figs. 11-14: GM speedup per policy at each core count."""
    out: Dict[int, Dict[str, Optional[float]]] = {}
    for cores in core_counts:
        table = speedup_sweep(workloads, policies, n_cores=cores,
                              prefetch=prefetch, suite=suite,
                              n_records=n_records, workers=workers)
        out[cores] = table["GEOMEAN"]
    return out
