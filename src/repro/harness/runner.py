"""Sweep execution engine: cached ``run`` and supervised parallel
``run_many``.

Resolution order for one point is memo -> store -> simulate:

* **memo** — an in-process ``{ExperimentSpec: SimResult}`` dict, so
  repeated calls inside one session return the identical object (several
  benchmarks share LRU baselines this way).
* **store** — the persistent :class:`~repro.harness.store.ResultStore`,
  so a fresh process reuses every point any earlier session simulated.
* **simulate** — :meth:`ExperimentSpec.execute`, fanned out over the
  :class:`~repro.harness.supervise.SupervisedPool` when ``workers > 1``.

Workers for :func:`run_many` come from the ``workers=`` argument, else
the ``REPRO_WORKERS`` environment variable, else 1 (serial).  ``0`` means
"one per CPU".  If worker processes cannot be created (sandboxed
environments, missing semaphores, ...), the engine logs a warning and
falls back to serial execution — results are identical either way,
because workers return ``SimResult.to_dict()`` payloads whose round-trip
is exact.

Fault tolerance (see :mod:`repro.harness.supervise`): a failing point is
recorded as a :class:`~repro.harness.supervise.FailedResult` instead of
killing the sweep; transient failures (``OSError`` family, crashed or
hung workers) are retried with exponential backoff; each pooled point
runs under a wall-clock watchdog deadline.  With ``keep_going`` (the
default) every healthy point still completes and a
:class:`~repro.harness.supervise.SweepFailedError` carrying the partial
results is raised at the end; under an active
:func:`~repro.harness.supervise.supervised_sweep` the failures are
collected there instead and failed points come back as ``None`` holes.
"""

from __future__ import annotations

import logging
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from dataclasses import replace as dc_replace

from ..checks.chaos import chaos_from_env, inject_execute
from ..sim.backends import ENGINE_ENV
from ..sim.stats import SimResult
from .spec import ExperimentSpec
from .store import ResultStore, default_store
from .supervise import (
    CRASH_ERROR,
    TIMEOUT_ERROR,
    FailedResult,
    PoolUnavailable,
    RetryPolicy,
    SupervisedPool,
    SweepFailedError,
    SweepInterrupted,
    active_supervisor,
    compute_timeout,
)

log = logging.getLogger(__name__)

#: sentinel: "use the process-wide default store"
USE_DEFAULT_STORE = object()

#: in-process memo (aliased by ``experiment._result_cache`` for
#: backwards compatibility with existing tests/tools)
_MEMO: Dict[ExperimentSpec, SimResult] = {}

ProgressFn = Callable[["SweepStats", Optional[ExperimentSpec], str], None]

#: backward-compatible alias — the pool-unavailable signal moved to
#: ``repro.harness.supervise`` with the supervised-pool rework
_PoolUnavailable = PoolUnavailable


@dataclass
class SweepStats:
    """Observability counters for one ``run_many`` call."""

    total: int = 0
    done: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    simulated: int = 0
    workers: int = 1
    pool_used: bool = False
    pool_mode: str = "serial"   # "serial" | "spawn" | "persistent"
    fell_back_serial: bool = False
    elapsed: float = 0.0      # wall-clock of the whole call
    busy_time: float = 0.0    # summed per-point simulation time
    failed: int = 0           # points that exhausted their attempts
    retried: int = 0          # transient failures given another attempt
    timeouts: int = 0         # watchdog deadline hits (retried or not)
    crashes: int = 0          # dead workers (exit code != 0, OOM, ...)
    store_write_failures: int = 0
    failures: List[FailedResult] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return self.memo_hits + self.store_hits

    @property
    def utilization(self) -> float:
        """Fraction of worker wall-clock spent simulating."""
        if self.elapsed <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.elapsed * self.workers))

    def summary(self) -> str:
        mode = f"pool/{self.pool_mode}" if self.pool_used else "serial"
        if self.fell_back_serial:
            mode = "serial (pool unavailable)"
        text = (f"{self.done}/{self.total} points in {self.elapsed:.2f}s | "
                f"{self.memo_hits} memo + {self.store_hits} store hits, "
                f"{self.simulated} simulated | workers={self.workers} "
                f"({mode}), utilization {self.utilization:.0%}")
        if self.failed or self.retried:
            text += (f" | {self.failed} failed, {self.retried} retried "
                     f"({self.timeouts} timeout(s), "
                     f"{self.crashes} crash(es))")
        return text


@dataclass
class _SessionStats:
    """Process-lifetime aggregate across every run()/run_many() call."""

    points: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    simulated: int = 0
    sweeps: List[SweepStats] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.points} experiment points: {self.memo_hits} memo "
                f"hits, {self.store_hits} store hits, "
                f"{self.simulated} simulated")


session_stats = _SessionStats()


def clear_memo() -> None:
    _MEMO.clear()


def resolve_workers(workers: Optional[int] = None) -> int:
    """``workers`` arg > ``REPRO_WORKERS`` env > 1; ``0`` = one per CPU.

    Negative values (arg or environment) are clamped to 1 with a
    warning — they would otherwise blow up at pool construction time.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                log.warning("ignoring non-integer REPRO_WORKERS=%r", raw)
                workers = 1
        else:
            workers = 1
    if workers < 0:
        log.warning("clamping workers=%d to 1 (use 0 for one per CPU)",
                    workers)
        return 1
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def _resolve_store(store) -> Optional[ResultStore]:
    if store is USE_DEFAULT_STORE:
        return default_store()
    return store


def _normalize_engine(spec: ExperimentSpec) -> ExperimentSpec:
    """Fold an active ``REPRO_ENGINE`` override into the spec itself.

    ``ExperimentSpec.execute`` honors the env var anyway (backend
    selection precedence), but leaving it implicit records the *wrong*
    engine in memo keys, store entries, and pool-worker task messages.
    Rewriting the spec makes the override explicit everywhere — a sweep
    under ``REPRO_ENGINE=batched`` stores every result as
    ``engine=batched``, and workers receive the selection in the spec
    rather than trusting inherited environment.
    """
    env = os.environ.get(ENGINE_ENV, "").strip()
    if env and spec.engine != env:
        return dc_replace(spec, engine=env)
    return spec


def _progress_printer(stats: SweepStats, spec: Optional[ExperimentSpec],
                      event: str) -> None:
    if spec is not None:
        print(f"[sweep] {stats.done}/{stats.total} {event:<9s} "
              f"{spec.label()}", file=sys.stderr)
    else:
        print(f"[sweep] {stats.summary()}", file=sys.stderr)


def _as_progress(progress: Union[None, bool, ProgressFn]) -> Optional[ProgressFn]:
    if progress is True:
        return _progress_printer
    if progress in (None, False):
        return None
    return progress


# ----------------------------------------------------------------------
# Single-point execution
# ----------------------------------------------------------------------
def run(spec: ExperimentSpec, store=USE_DEFAULT_STORE,
        force: bool = False, obs=None) -> SimResult:
    """Result for one point: memo -> store -> simulate (and persist).

    An enabled ``obs`` (:class:`~repro.obs.ObsConfig`) forces a fresh
    simulation: trace and metrics artifacts only exist when the simulator
    actually runs, so cache hits would silently produce nothing.
    """
    if obs is not None and obs.enabled:
        force = True
    spec = _normalize_engine(spec)
    if not force and spec in _MEMO:
        session_stats.points += 1
        session_stats.memo_hits += 1
        return _MEMO[spec]
    resolved = _resolve_store(store)
    session_stats.points += 1
    if not force and resolved is not None:
        cached = resolved.get(spec)
        if cached is not None:
            _MEMO[spec] = cached
            session_stats.store_hits += 1
            return cached
    result = spec.execute(obs=obs)
    session_stats.simulated += 1
    _MEMO[spec] = result
    if resolved is not None:
        try:
            resolved.put(spec, result)
        except OSError as exc:  # a full/readonly disk shouldn't kill a run
            log.warning("result store write failed: %s", exc)
    return result


# ----------------------------------------------------------------------
# Sweep execution
# ----------------------------------------------------------------------
def run_many(specs: Sequence[ExperimentSpec], workers: Optional[int] = None,
             store=USE_DEFAULT_STORE,
             progress: Union[None, bool, ProgressFn] = None,
             force: bool = False,
             stats_out: Optional[SweepStats] = None,
             keep_going: Optional[bool] = None,
             retry: Optional[RetryPolicy] = None,
             timeout: Optional[float] = None,
             on_failure: Optional[str] = None) -> List[Optional[SimResult]]:
    """Results for ``specs`` (order preserved, duplicates deduplicated).

    Cache hits are served first; the remaining points are simulated on
    the supervised worker pool (serial when ``workers`` is 1, or when
    processes cannot start).  Pass ``progress=True`` for per-point
    stderr lines, or a callable ``(stats, spec, event)`` for custom
    reporting.  Pass a ``SweepStats`` as ``stats_out`` to receive the
    counters.

    Fault handling: ``keep_going`` (default True) finishes every healthy
    point before reporting failures; ``keep_going=False`` aborts on the
    first one.  ``retry``/``timeout`` override the supervisor's (or the
    environment's) retry policy and watchdog deadline.  ``on_failure``
    selects what a failed point produces: ``"raise"`` (default) raises
    :class:`SweepFailedError` carrying the partial results once the
    sweep is over, ``"none"`` leaves ``None`` holes in the returned list
    (the default under an active supervisor, which collects the failures
    for the CLI's failure table).
    """
    specs = [_normalize_engine(s) for s in specs]
    sup = active_supervisor()
    if keep_going is None:
        keep_going = sup.keep_going if sup is not None else True
    if retry is None:
        retry = sup.retry if sup is not None else RetryPolicy.from_env()
    if timeout is None and sup is not None:
        timeout = sup.timeout
    if on_failure is None:
        on_failure = "none" if (sup is not None and keep_going) else "raise"
    if on_failure not in ("raise", "none"):
        raise ValueError(f"on_failure must be 'raise' or 'none', "
                         f"not {on_failure!r}")
    manifest = sup.manifest if sup is not None else None

    report = _as_progress(progress)
    stats = stats_out if stats_out is not None else SweepStats()
    stats.total = len(specs)
    stats.workers = resolve_workers(workers)
    resolved = _resolve_store(store)
    started = time.monotonic()

    results: Dict[ExperimentSpec, SimResult] = {}
    failed_specs: Set[ExperimentSpec] = set()
    pending: List[ExperimentSpec] = []
    for spec in dict.fromkeys(specs):           # unique, order kept
        session_stats.points += 1
        if manifest is not None:
            manifest.register(spec)
        if not force and spec in _MEMO:
            results[spec] = _MEMO[spec]
            stats.memo_hits += 1
            stats.done += 1
            session_stats.memo_hits += 1
            if manifest is not None:
                manifest.mark_done(spec)
            if report:
                report(stats, spec, "memo-hit")
            continue
        if not force and resolved is not None:
            cached = resolved.get(spec)
            if cached is not None:
                _MEMO[spec] = cached
                results[spec] = cached
                stats.store_hits += 1
                stats.done += 1
                session_stats.store_hits += 1
                if manifest is not None:
                    manifest.mark_done(spec)
                if report:
                    report(stats, spec, "store-hit")
                continue
        pending.append(spec)
    stats.total = stats.done + len(pending)
    if manifest is not None:
        # One checkpoint before simulation starts, so even a SIGKILL'd
        # campaign leaves a complete pending list behind.
        manifest.checkpoint()

    def finish(spec: ExperimentSpec, result: SimResult,
               duration: float) -> None:
        _MEMO[spec] = result
        results[spec] = result
        if resolved is not None:
            try:
                resolved.put(spec, result)
            except OSError as exc:
                # First failure is loud; the rest collapse into one
                # summary line at the end of the sweep.
                stats.store_write_failures += 1
                if stats.store_write_failures == 1:
                    log.warning("result store write failed: %s", exc)
                else:
                    log.debug("result store write failed: %s", exc)
        stats.simulated += 1
        stats.done += 1
        stats.busy_time += duration
        session_stats.simulated += 1
        if manifest is not None:
            manifest.mark_done(spec)
            manifest.checkpoint()
        if report:
            report(stats, spec, "simulated")

    def fail(failure: FailedResult) -> None:
        failed_specs.add(failure.spec)
        stats.failed += 1
        stats.failures.append(failure)
        if failure.kind == "timeout":
            stats.timeouts += 1
        elif failure.kind == "crash":
            stats.crashes += 1
        if sup is not None:
            sup.record_failure(failure)   # manifest + incident trail
        elif manifest is not None:
            manifest.mark_failed(failure)
            manifest.checkpoint()
        log.warning("sweep point failed: %s", failure.summary())
        if report:
            report(stats, failure.spec, "failed")

    def note_retry(spec: ExperimentSpec, attempt: int, error: str) -> None:
        stats.retried += 1
        if error == TIMEOUT_ERROR:
            stats.timeouts += 1
        elif error == CRASH_ERROR:
            stats.crashes += 1

    def run_serial(todo: Sequence[ExperimentSpec]) -> None:
        chaos = chaos_from_env()
        for spec in todo:
            if sup is not None and sup.interrupted:
                raise SweepInterrupted()
            key = spec.key()
            attempt = 0
            while True:
                start = time.monotonic()
                try:
                    if chaos is not None:
                        inject_execute(chaos, key, attempt,
                                       disruptive_ok=False)
                    result = spec.execute()
                except Exception as exc:
                    duration = time.monotonic() - start
                    transient = retry.is_transient(exc)
                    if transient and attempt + 1 < retry.max_attempts:
                        note_retry(spec, attempt, type(exc).__name__)
                        if sup is not None:
                            sup.record_incident(
                                "retry", spec, error=type(exc).__name__,
                                attempt=attempt)
                        time.sleep(retry.delay(key, attempt))
                        attempt += 1
                        continue
                    fail(FailedResult.from_exception(
                        spec, exc, attempts=attempt + 1,
                        duration=duration, permanent=not transient))
                    if not keep_going:
                        raise SweepFailedError(stats.failures, results)
                    break
                else:
                    finish(spec, result, time.monotonic() - start)
                    break

    try:
        if pending:
            n_workers = min(stats.workers, len(pending))
            if n_workers > 1:
                from .turbo import resolve_pool_mode, shared_pool
                mode = resolve_pool_mode()
                try:
                    if mode == "persistent":
                        shared_pool(n_workers).run(
                            pending, on_success=finish, on_failure=fail,
                            on_retry=note_retry, retry=retry,
                            timeout_for=lambda s: compute_timeout(s, timeout),
                            supervisor=sup, keep_going=keep_going)
                    else:
                        pool = SupervisedPool(
                            n_workers, retry,
                            timeout_for=lambda s: compute_timeout(s, timeout),
                            supervisor=sup)
                        pool.run(pending, on_success=finish,
                                 on_failure=fail, on_retry=note_retry,
                                 keep_going=keep_going)
                    stats.pool_used = True
                    stats.pool_mode = mode
                except PoolUnavailable as exc:
                    log.warning("worker pool unavailable (%s); "
                                "falling back to serial execution",
                                exc.reason)
                    stats.fell_back_serial = True
                    # Completed and failed points keep their outcome —
                    # only genuinely unresolved specs are rerun.
                    run_serial([s for s in pending
                                if s not in results
                                and s not in failed_specs])
                else:
                    if not keep_going and stats.failures:
                        raise SweepFailedError(stats.failures, results)
            else:
                run_serial(pending)
    except (SweepInterrupted, KeyboardInterrupt):
        if sup is not None:
            sup.flush(force=True)
            counts = (manifest.counts() if manifest is not None
                      else {"done": stats.done, "pending": 0})
            raise SweepInterrupted(
                manifest.path if manifest is not None else None,
                done=counts.get("done", 0),
                pending=counts.get("pending", 0)) from None
        raise

    stats.elapsed = time.monotonic() - started
    session_stats.sweeps.append(stats)
    if stats.store_write_failures > 1:
        log.warning("result store: %d write(s) failed during this sweep",
                    stats.store_write_failures)
    if report:
        report(stats, None, "done")
    if stats.failures:
        if sup is not None:
            sup.flush(force=True)
        if on_failure == "raise":
            raise SweepFailedError(stats.failures, results)
        return [results.get(spec) for spec in specs]
    return [results[spec] for spec in specs]
