"""Sweep execution engine: cached ``run`` and parallel ``run_many``.

Resolution order for one point is memo -> store -> simulate:

* **memo** — an in-process ``{ExperimentSpec: SimResult}`` dict, so
  repeated calls inside one session return the identical object (several
  benchmarks share LRU baselines this way).
* **store** — the persistent :class:`~repro.harness.store.ResultStore`,
  so a fresh process reuses every point any earlier session simulated.
* **simulate** — :meth:`ExperimentSpec.execute`, optionally fanned out
  over a ``concurrent.futures`` process pool.

Workers for :func:`run_many` come from the ``workers=`` argument, else
the ``REPRO_WORKERS`` environment variable, else 1 (serial).  ``0`` means
"one per CPU".  If a pool cannot be created or dies (sandboxed
environments, missing semaphores, ...), the engine logs a warning and
falls back to serial execution — results are identical either way,
because workers return ``SimResult.to_dict()`` payloads whose round-trip
is exact.
"""

from __future__ import annotations

import logging
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..sim.stats import SimResult
from .spec import ExperimentSpec
from .store import ResultStore, default_store

log = logging.getLogger(__name__)

#: sentinel: "use the process-wide default store"
USE_DEFAULT_STORE = object()

#: in-process memo (aliased by ``experiment._result_cache`` for
#: backwards compatibility with existing tests/tools)
_MEMO: Dict[ExperimentSpec, SimResult] = {}

ProgressFn = Callable[["SweepStats", Optional[ExperimentSpec], str], None]


@dataclass
class SweepStats:
    """Observability counters for one ``run_many`` call."""

    total: int = 0
    done: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    simulated: int = 0
    workers: int = 1
    pool_used: bool = False
    fell_back_serial: bool = False
    elapsed: float = 0.0      # wall-clock of the whole call
    busy_time: float = 0.0    # summed per-point simulation time

    @property
    def cache_hits(self) -> int:
        return self.memo_hits + self.store_hits

    @property
    def utilization(self) -> float:
        """Fraction of worker wall-clock spent simulating."""
        if self.elapsed <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.elapsed * self.workers))

    def summary(self) -> str:
        mode = "pool" if self.pool_used else "serial"
        if self.fell_back_serial:
            mode = "serial (pool unavailable)"
        return (f"{self.done}/{self.total} points in {self.elapsed:.2f}s | "
                f"{self.memo_hits} memo + {self.store_hits} store hits, "
                f"{self.simulated} simulated | workers={self.workers} "
                f"({mode}), utilization {self.utilization:.0%}")


@dataclass
class _SessionStats:
    """Process-lifetime aggregate across every run()/run_many() call."""

    points: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    simulated: int = 0
    sweeps: List[SweepStats] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.points} experiment points: {self.memo_hits} memo "
                f"hits, {self.store_hits} store hits, "
                f"{self.simulated} simulated")


session_stats = _SessionStats()


def clear_memo() -> None:
    _MEMO.clear()


def resolve_workers(workers: Optional[int] = None) -> int:
    """``workers`` arg > ``REPRO_WORKERS`` env > 1; ``0`` = one per CPU."""
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                log.warning("ignoring non-integer REPRO_WORKERS=%r", raw)
                workers = 1
        else:
            workers = 1
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def _resolve_store(store) -> Optional[ResultStore]:
    if store is USE_DEFAULT_STORE:
        return default_store()
    return store


def _progress_printer(stats: SweepStats, spec: Optional[ExperimentSpec],
                      event: str) -> None:
    if spec is not None:
        print(f"[sweep] {stats.done}/{stats.total} {event:<9s} "
              f"{spec.label()}", file=sys.stderr)
    else:
        print(f"[sweep] {stats.summary()}", file=sys.stderr)


def _as_progress(progress: Union[None, bool, ProgressFn]) -> Optional[ProgressFn]:
    if progress is True:
        return _progress_printer
    if progress in (None, False):
        return None
    return progress


# ----------------------------------------------------------------------
# Single-point execution
# ----------------------------------------------------------------------
def run(spec: ExperimentSpec, store=USE_DEFAULT_STORE,
        force: bool = False, obs=None) -> SimResult:
    """Result for one point: memo -> store -> simulate (and persist).

    An enabled ``obs`` (:class:`~repro.obs.ObsConfig`) forces a fresh
    simulation: trace and metrics artifacts only exist when the simulator
    actually runs, so cache hits would silently produce nothing.
    """
    if obs is not None and obs.enabled:
        force = True
    if not force and spec in _MEMO:
        session_stats.points += 1
        session_stats.memo_hits += 1
        return _MEMO[spec]
    resolved = _resolve_store(store)
    session_stats.points += 1
    if not force and resolved is not None:
        cached = resolved.get(spec)
        if cached is not None:
            _MEMO[spec] = cached
            session_stats.store_hits += 1
            return cached
    result = spec.execute(obs=obs)
    session_stats.simulated += 1
    _MEMO[spec] = result
    if resolved is not None:
        try:
            resolved.put(spec, result)
        except OSError as exc:  # a full/readonly disk shouldn't kill a sweep
            log.warning("result store write failed: %s", exc)
    return result


def _worker_execute(spec_data: Dict) -> Dict:
    """Pool entry point: simulate one spec, return a picklable payload."""
    start = time.monotonic()
    result = ExperimentSpec.from_dict(spec_data).execute()
    return {"result": result.to_dict(),
            "duration": time.monotonic() - start}


# ----------------------------------------------------------------------
# Sweep execution
# ----------------------------------------------------------------------
def run_many(specs: Sequence[ExperimentSpec], workers: Optional[int] = None,
             store=USE_DEFAULT_STORE,
             progress: Union[None, bool, ProgressFn] = None,
             force: bool = False,
             stats_out: Optional[SweepStats] = None) -> List[SimResult]:
    """Results for ``specs`` (order preserved, duplicates deduplicated).

    Cache hits are served first; the remaining points are simulated on a
    process pool of ``workers`` (serial when 1, or when the pool cannot
    start).  Pass ``progress=True`` for per-point stderr lines, or a
    callable ``(stats, spec, event)`` for custom reporting.  Pass a
    ``SweepStats`` as ``stats_out`` to receive the counters.
    """
    specs = list(specs)
    report = _as_progress(progress)
    stats = stats_out if stats_out is not None else SweepStats()
    stats.total = len(specs)
    stats.workers = resolve_workers(workers)
    resolved = _resolve_store(store)
    started = time.monotonic()

    results: Dict[ExperimentSpec, SimResult] = {}
    pending: List[ExperimentSpec] = []
    for spec in dict.fromkeys(specs):           # unique, order kept
        session_stats.points += 1
        if not force and spec in _MEMO:
            results[spec] = _MEMO[spec]
            stats.memo_hits += 1
            stats.done += 1
            session_stats.memo_hits += 1
            if report:
                report(stats, spec, "memo-hit")
            continue
        if not force and resolved is not None:
            cached = resolved.get(spec)
            if cached is not None:
                _MEMO[spec] = cached
                results[spec] = cached
                stats.store_hits += 1
                stats.done += 1
                session_stats.store_hits += 1
                if report:
                    report(stats, spec, "store-hit")
                continue
        pending.append(spec)
    stats.total = stats.done + len(pending)

    def finish(spec: ExperimentSpec, result: SimResult,
               duration: float) -> None:
        _MEMO[spec] = result
        results[spec] = result
        if resolved is not None:
            try:
                resolved.put(spec, result)
            except OSError as exc:
                log.warning("result store write failed: %s", exc)
        stats.simulated += 1
        stats.done += 1
        stats.busy_time += duration
        session_stats.simulated += 1
        if report:
            report(stats, spec, "simulated")

    def run_serial(todo: Sequence[ExperimentSpec]) -> None:
        for spec in todo:
            start = time.monotonic()
            finish(spec, spec.execute(), time.monotonic() - start)

    if pending:
        n_workers = min(stats.workers, len(pending))
        if n_workers > 1:
            try:
                _run_pool(pending, n_workers, finish)
                stats.pool_used = True
            except _PoolUnavailable as exc:
                log.warning("worker pool unavailable (%s); "
                            "falling back to serial execution", exc.reason)
                stats.fell_back_serial = True
                run_serial([s for s in pending if s not in results])
        else:
            run_serial(pending)

    stats.elapsed = time.monotonic() - started
    session_stats.sweeps.append(stats)
    if report:
        report(stats, None, "done")
    return [results[spec] for spec in specs]


class _PoolUnavailable(Exception):
    """Internal: the process pool could not start or died mid-sweep."""

    def __init__(self, reason: BaseException) -> None:
        super().__init__(str(reason))
        self.reason = reason


def _run_pool(pending: Sequence[ExperimentSpec], n_workers: int,
              finish: Callable[[ExperimentSpec, SimResult, float], None]) -> None:
    try:
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool
    except ImportError as exc:  # stripped-down stdlib
        raise _PoolUnavailable(exc) from exc
    try:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {pool.submit(_worker_execute, spec.to_dict()): spec
                       for spec in pending}
            for future in as_completed(futures):
                payload = future.result()
                finish(futures[future],
                       SimResult.from_dict(payload["result"]),
                       payload["duration"])
    except (BrokenProcessPool, OSError, PermissionError) as exc:
        # No /dev/shm, fork refused, workers killed, ... — the caller
        # reruns whatever did not complete, serially.
        raise _PoolUnavailable(exc) from exc
